"""Process-wide execution-plane switchboards.

Two independent *wall-clock-only* optimizations share the fast-path
switchboard:

* ``batch_kernels`` -- engine hot loops call ``Expr.compile_batch``
  vectorized kernels instead of per-row closures;
* ``fuse_charges`` -- workers yield :func:`repro.sim.commands.CPU_FUSED`
  commands, and the simulator services the resulting completion chains
  inline (see ``Simulator._service_pool``) instead of one heap event per
  charge;
* ``columnar_pages`` -- scan sources emit
  :class:`~repro.storage.page.ColumnBatch` column views instead of row
  batches, and the data plane runs late-materialized (selection vectors,
  column kernels, join tails) until an emit point forces row tuples.
  Charges are computed from row *counts*, which the columnar plane keeps
  identical, so simulated results are bit-identical either way;
* ``packed_storage`` -- tables build their column vectors *packed*
  (:mod:`repro.storage.packed`): typed ``array`` buffers for numeric
  kinds, dictionary-encoded codes for low-cardinality columns, shared
  zero-copy by pages and shard partitions, with predicate-on-dictionary
  selection kernels and memoized per-page predicate bitmaps.  Only
  meaningful under ``columnar_pages`` (packing decides how column
  vectors are *stored*; the columnar plane decides whether they are
  *used*), so :func:`packed_storage_active` ANDs the two.  Like the
  other fast-path flags it never changes a simulated tick;
* ``arrangements`` -- join consumers share refcounted build-side
  indexes (:mod:`repro.storage.arrangements`): one hash arrangement per
  (table, key column) built on first demand and probed by every
  concurrent query joining on that key, instead of each query building
  its own dict.  Every simulated charge (build-input reads, hashing,
  insert bookkeeping, admission scans) is still paid per query -- only
  the host-side Python data structure is shared -- so simulated results
  stay bit-identical either way;
* ``query_folding`` -- the sharing layers (WoP registry, result cache,
  arrangements) match plans by *subsumption*
  (:mod:`repro.query.subsume`), not just exact signature equality: a
  packet can attach to a host whose output strictly contains its own
  through a residual post-filter, a cache probe can answer from a
  superset entry, and a range probe can ride a sibling arrangement's
  sorted variant.  Unlike the other fast-path flags, folding changes
  *simulated timing* (folded satellites skip sub-plan work and pay
  fold-search/residual charges instead); query **results** stay
  bit-identical, which the golden suite fingerprint-asserts.

All default on; ``fast_path(False, False, False, False, False)``
restores the row-at-a-time "before" behavior for benchmarking and for
the golden determinism tests, which hold the modes to *bit-identical*
simulated results.  ``REPRO_COLUMNAR=0`` / ``REPRO_PACKED=0`` /
``REPRO_ARRANGE=0`` / ``REPRO_FOLD=0`` seed the columnar / packed /
arrangement / folding defaults off at import time (spawned
benchmark/worker processes inherit the parent's choice).

Because folding moves simulated ticks, ``fast_path(...)`` resolves
``fold=None`` to **False** -- every context pinned for golden/wallclock
comparisons stays on the reference (fold-off) timing plane unless it
opts in explicitly -- while the *process default* outside any context
is on (``REPRO_FOLD`` seeded).

A second switchboard carries the process-wide defaults of the **adaptive
GQP data plane** (:mod:`repro.gqp.ordering`):

* ``gqp_adaptive_ordering`` -- the CJOIN filter chain re-sorts itself
  most-selective-first at logical-tick boundaries;
* ``gqp_filter_kernels`` -- columnar filter probing with chain-fused
  charges and pass-mask short-circuiting.

Unlike the fast path, these two **change simulated results when enabled**
(fewer doomed tuples reach later filters; irrelevant filters are skipped).
They default *off*, so default runs stay bit-identical to the committed
golden metrics; ``EngineConfig`` fields set to ``None`` fall back to these
defaults, which makes one env var / context manager flip whole sweeps.
The environment variables ``REPRO_GQP_ORDERING=adaptive`` and
``REPRO_GQP_KERNELS=1`` seed the defaults at import time so freshly
spawned benchmark/worker processes inherit the parent's choice.

This lives in :mod:`repro.sim` (the lowest layer) because the simulator
itself consults ``fuse_charges``; engine code imports the same switches
through :mod:`repro.engine.config`, which re-exports them."""

from __future__ import annotations

import contextlib
import os

_FAST_PATH = {
    "batch_kernels": True,
    "fuse_charges": True,
    "columnar_pages": os.environ.get("REPRO_COLUMNAR", "1") not in ("0", "false"),
    "packed_storage": os.environ.get("REPRO_PACKED", "1") not in ("0", "false"),
    "arrangements": os.environ.get("REPRO_ARRANGE", "1") not in ("0", "false"),
    "query_folding": os.environ.get("REPRO_FOLD", "1") not in ("0", "false"),
}

_GQP_PLANE = {
    "adaptive_ordering": os.environ.get("REPRO_GQP_ORDERING", "") == "adaptive",
    "filter_kernels": os.environ.get("REPRO_GQP_KERNELS", "") not in ("", "0", "false"),
}


def batch_kernels_default() -> bool:
    """Process-wide default for vectorized batch kernels."""
    return _FAST_PATH["batch_kernels"]


def fuse_charges_default() -> bool:
    """Process-wide default for fused simulator CPU charges."""
    return _FAST_PATH["fuse_charges"]


def columnar_pages_default() -> bool:
    """Process-wide default for the columnar (late-materialized) data plane."""
    return _FAST_PATH["columnar_pages"]


def packed_storage_default() -> bool:
    """Process-wide default for packed (typed/dictionary) column vectors."""
    return _FAST_PATH["packed_storage"]


def arrangements_default() -> bool:
    """Process-wide default for shared (refcounted) join arrangements."""
    return _FAST_PATH["arrangements"]


def query_folding_default() -> bool:
    """Process-wide default for subsumption-based query folding."""
    return _FAST_PATH["query_folding"]


def packed_storage_active() -> bool:
    """Whether tables should build packed column vectors *right now*:
    packed storage only pays off when the columnar plane consumes it, so
    the packed flag is effective only under ``columnar_pages``."""
    return _FAST_PATH["packed_storage"] and _FAST_PATH["columnar_pages"]


@contextlib.contextmanager
def fast_path(
    batch_kernels: bool = True,
    fuse_charges: bool = True,
    columnar_pages: bool | None = None,
    packed_storage: bool | None = None,
    arrangements: bool | None = None,
    query_folding: bool | None = None,
):
    """Temporarily override the fast-path defaults (benchmarking/tests).

    ``columnar_pages=None`` follows ``batch_kernels`` -- the historical
    two-argument calls ``fast_path(False, False)`` / ``fast_path(True,
    True)`` keep meaning "everything off" / "everything on" --
    ``packed_storage=None`` follows the resolved ``columnar_pages``, and
    ``arrangements=None`` follows ``batch_kernels`` for the same
    everything-off/everything-on reason.

    ``query_folding=None`` resolves to **False**, not to the process
    default: folding changes simulated ticks, and every pinned context
    (golden suites, wallclock A/B runs, shard workers replaying a parent's
    flags) must stay on the reference timing plane unless it asks for
    folding explicitly."""
    saved = dict(_FAST_PATH)
    _FAST_PATH["batch_kernels"] = batch_kernels
    _FAST_PATH["fuse_charges"] = fuse_charges
    columnar = batch_kernels if columnar_pages is None else columnar_pages
    _FAST_PATH["columnar_pages"] = columnar
    _FAST_PATH["packed_storage"] = (
        columnar if packed_storage is None else packed_storage
    )
    _FAST_PATH["arrangements"] = (
        batch_kernels if arrangements is None else arrangements
    )
    _FAST_PATH["query_folding"] = bool(query_folding)
    try:
        yield
    finally:
        _FAST_PATH.update(saved)


def gqp_adaptive_ordering_default() -> bool:
    """Process-wide default for selectivity-ordered CJOIN filter chains."""
    return _GQP_PLANE["adaptive_ordering"]


def gqp_filter_kernels_default() -> bool:
    """Process-wide default for columnar CJOIN filter kernels."""
    return _GQP_PLANE["filter_kernels"]


def set_gqp_plane(
    adaptive_ordering: bool | None = None, filter_kernels: bool | None = None
) -> None:
    """Set the process-wide adaptive-GQP defaults (``None`` leaves a knob
    untouched).  The CLI uses this to apply ``--gqp-ordering`` /
    ``--gqp-kernels`` to every engine a command builds, including the
    hard-coded CJOIN-SP configs inside the hybrid/service routers."""
    if adaptive_ordering is not None:
        _GQP_PLANE["adaptive_ordering"] = adaptive_ordering
    if filter_kernels is not None:
        _GQP_PLANE["filter_kernels"] = filter_kernels


@contextlib.contextmanager
def gqp_plane(adaptive_ordering: bool = False, filter_kernels: bool = False):
    """Temporarily override the adaptive-GQP defaults (benchmarks/tests)."""
    saved = dict(_GQP_PLANE)
    _GQP_PLANE["adaptive_ordering"] = adaptive_ordering
    _GQP_PLANE["filter_kernels"] = filter_kernels
    try:
        yield
    finally:
        _GQP_PLANE.update(saved)
