"""Integration tests for the Simulator event loop."""

import pytest

from repro.sim import BLOCK, CPU, IO, SLEEP, DeadlockError, MachineSpec, Simulator
from repro.sim.engine import SimulationError
from repro.sim.machine import DiskSpec


def make_sim(cores=4, hz=1e9, bandwidth=100e6, oversub=0.0):
    spec = MachineSpec(
        cores=cores,
        hz=hz,
        oversub_penalty=oversub,
        disks=(DiskSpec(name="disk", bandwidth=bandwidth),),
    )
    return Simulator(spec)


class TestBasics:
    def test_single_cpu_burst(self):
        sim = make_sim()
        trace = []

        def worker():
            yield CPU(2e9)
            trace.append(sim.now)

        sim.spawn(worker(), "w")
        sim.run()
        assert trace == [pytest.approx(2.0)]

    def test_sleep(self):
        sim = make_sim()
        times = []

        def worker():
            yield SLEEP(1.5)
            times.append(sim.now)
            yield SLEEP(0.5)
            times.append(sim.now)

        sim.spawn(worker(), "w")
        sim.run()
        assert times == [pytest.approx(1.5), pytest.approx(2.0)]

    def test_io(self):
        sim = make_sim(bandwidth=100e6)
        done = []

        def worker():
            yield IO("disk", 50e6)
            done.append(sim.now)

        sim.spawn(worker(), "w")
        sim.run()
        assert done == [pytest.approx(0.5)]
        assert sim.disk.bytes_delivered == pytest.approx(50e6)

    def test_unknown_device(self):
        sim = make_sim()

        def worker():
            yield IO("nope", 1)

        sim.spawn(worker(), "w")
        with pytest.raises(SimulationError):
            sim.run()

    def test_return_value_via_join(self):
        sim = make_sim()
        got = []

        def child():
            yield CPU(1e9)
            return 42

        def parent():
            t = sim.spawn(child(), "child")
            got.append((yield from t.join()))

        sim.spawn(parent(), "parent")
        sim.run()
        assert got == [42]

    def test_join_finished_thread_returns_immediately(self):
        sim = make_sim()
        got = []

        def child():
            yield CPU(1e8)
            return "done"

        def parent(t):
            yield SLEEP(5.0)  # child long finished
            got.append((yield from t.join()))

        t = sim.spawn(child(), "child")
        sim.spawn(parent(t), "parent")
        sim.run()
        assert got == ["done"]

    def test_exception_propagates_through_join(self):
        sim = make_sim()
        caught = []

        def child():
            yield CPU(1e8)
            raise ValueError("boom")

        def parent():
            t = sim.spawn(child(), "child")
            try:
                yield from t.join()
            except ValueError as e:
                caught.append(str(e))

        sim.spawn(parent(), "parent")
        sim.run()
        assert caught == ["boom"]

    def test_unjoined_exception_aborts_run(self):
        sim = make_sim()

        def child():
            yield CPU(1e8)
            raise ValueError("boom")

        sim.spawn(child(), "child")
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_yield_value_is_reported(self):
        sim = make_sim()

        def worker():
            yield "not a command"

        sim.spawn(worker(), "w")
        with pytest.raises(SimulationError, match="yield from"):
            sim.run()


class TestConcurrency:
    def test_cpu_contention_stretches_time(self):
        sim = make_sim(cores=1)
        ends = []

        def worker(i):
            yield CPU(1e9)
            ends.append(sim.now)

        for i in range(2):
            sim.spawn(worker(i), f"w{i}")
        sim.run()
        assert ends == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_parallel_speedup(self):
        """4 threads, 4 cores: same finish time as one thread alone."""
        sim = make_sim(cores=4)

        def worker():
            yield CPU(1e9)

        for i in range(4):
            sim.spawn(worker(), f"w{i}")
        end = sim.run()
        assert end == pytest.approx(1.0)

    def test_block_unblock(self):
        sim = make_sim()
        trace = []

        def waiter():
            trace.append(("wait", sim.now))
            got = yield BLOCK
            trace.append(("woke", sim.now, got))

        def waker(t):
            yield SLEEP(2.0)
            sim.unblock(t, "hello")

        t = sim.spawn(waiter(), "waiter")
        sim.spawn(waker(t), "waker")
        sim.run()
        assert trace == [("wait", 0.0), ("woke", pytest.approx(2.0), "hello")]

    def test_deadlock_detection(self):
        sim = make_sim()

        def stuck():
            yield BLOCK

        sim.spawn(stuck(), "stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run()

    def test_daemon_threads_may_stay_blocked(self):
        sim = make_sim()

        def daemon():
            yield BLOCK

        def worker():
            yield CPU(1e9)

        sim.spawn(daemon(), "d", daemon=True)
        sim.spawn(worker(), "w")
        end = sim.run()
        assert end == pytest.approx(1.0)

    def test_run_until(self):
        sim = make_sim()

        def worker():
            yield CPU(10e9)

        sim.spawn(worker(), "w")
        end = sim.run(until=1.0)
        assert end == pytest.approx(1.0)


class TestMetrics:
    def test_category_accounting(self):
        sim = make_sim()

        def worker():
            yield CPU(1e9, "hashing")
            yield CPU(2e9, "joins")

        sim.spawn(worker(), "w", query_id=7)
        sim.run()
        by_cat = sim.metrics.cpu_cycles_by_category
        assert by_cat["hashing"] == 1e9
        assert by_cat["joins"] == 2e9
        assert sim.metrics.cpu_cycles_by_query[(7, "joins")] == 2e9
        secs = sim.metrics.cpu_seconds_by_category(1e9)
        assert secs["hashing"] == pytest.approx(1.0)

    def test_avg_cores_used(self):
        sim = make_sim(cores=4)

        def worker():
            yield CPU(1e9)

        for i in range(2):
            sim.spawn(worker(), f"w{i}")
        sim.run()
        assert sim.avg_cores_used() == pytest.approx(2.0)

    def test_avg_read_rate(self):
        sim = make_sim(bandwidth=100e6)

        def worker():
            yield IO("disk", 200e6)

        sim.spawn(worker(), "w")
        sim.run()
        assert sim.avg_read_mb_per_s() == pytest.approx(200e6 / (1 << 20) / 2.0)


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build():
            sim = make_sim(cores=2)
            log = []

            def worker(i):
                yield CPU(1e8 * (i + 1), "misc")
                yield IO("disk", 1e6 * (i + 1))
                log.append((i, sim.now))

            for i in range(5):
                sim.spawn(worker(i), f"w{i}")
            sim.run()
            return log

        assert build() == build()
