"""Tests for the calibrated cost model."""

import math

import pytest

from repro.sim.commands import CpuCommand
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.metrics import CATEGORIES


class TestBuilders:
    def setup_method(self):
        self.cm = CostModel()

    def test_scan_scales_with_count_and_weight(self):
        a = self.cm.scan(10, 1.0)
        b = self.cm.scan(10, 100.0)
        assert isinstance(a, CpuCommand)
        assert a.category == "scans"
        assert b.cycles == pytest.approx(a.cycles * 100)

    def test_predicate_scales_with_terms(self):
        one = self.cm.predicate(10, 1.0, terms=1)
        three = self.cm.predicate(10, 1.0, terms=3)
        assert three.cycles == pytest.approx(3 * one.cycles)

    def test_hashing_includes_equals(self):
        base = self.cm.hashing(10, 1.0)
        with_eq = self.cm.hashing(10, 1.0, equals=5)
        assert with_eq.cycles > base.cycles
        assert base.category == "hashing"

    def test_probe_shared_costs_more(self):
        plain = self.cm.probe(10, 1.0)
        shared = self.cm.probe(10, 1.0, shared=True)
        assert shared.cycles > plain.cycles
        assert plain.category == "joins"

    def test_aggregate_scales_with_functions(self):
        one = self.cm.aggregate(10, 1.0, functions=1)
        eight = self.cm.aggregate(10, 1.0, functions=8)
        assert eight.cycles > one.cycles
        assert one.category == "aggregation"

    def test_sort_n_log_n(self):
        small = self.cm.sort(16, 1.0)
        big = self.cm.sort(1024, 1.0)
        expected_ratio = (1024 * math.log2(1024)) / (16 * math.log2(16))
        assert big.cycles / small.cycles == pytest.approx(expected_ratio)

    def test_sort_single_item(self):
        # log2(1) = 0 must not zero the cost out.
        assert self.cm.sort(1, 1.0).cycles > 0

    def test_bitmap_and_word_granularity(self):
        w1 = self.cm.bitmap_and(10, 1.0, nqueries=64)
        w2 = self.cm.bitmap_and(10, 1.0, nqueries=65)
        assert w2.cycles == pytest.approx(2 * w1.cycles)
        assert w1.category == "joins"

    def test_distribute_and_preprocess_categories(self):
        assert self.cm.distribute(10, 1.0).category == "misc"
        assert self.cm.preprocess(10, 1.0).category == "scans"

    def test_copy_category_misc(self):
        assert self.cm.copy(10, 1.0).category == "misc"

    def test_all_command_categories_known(self):
        cmds = [
            self.cm.scan(1, 1),
            self.cm.predicate(1, 1),
            self.cm.read(1, 1),
            self.cm.hashing(1, 1),
            self.cm.build(1, 1),
            self.cm.probe(1, 1),
            self.cm.emit_join(1, 1),
            self.cm.aggregate(1, 1),
            self.cm.sort(2, 1),
            self.cm.copy(1, 1),
            self.cm.bitmap_and(1, 1, 1),
            self.cm.distribute(1, 1),
            self.cm.preprocess(1, 1),
        ]
        assert {c.category for c in cmds} <= set(CATEGORIES)


class TestCalibration:
    """Pin down the calibration *relations* the experiments depend on (see
    DESIGN.md); absolute values may be retuned, these orderings must hold."""

    def test_shared_probe_much_heavier_than_query_centric(self):
        cm = DEFAULT_COST_MODEL
        assert cm.shared_probe_extra > 5 * cm.probe_visit

    def test_preprocessor_slower_than_plain_scan(self):
        cm = DEFAULT_COST_MODEL
        assert cm.preprocessor_tuple > cm.scan_tuple

    def test_copy_comparable_to_probe(self):
        cm = DEFAULT_COST_MODEL
        assert cm.probe_visit <= cm.copy_tuple <= 5 * cm.probe_visit

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.scan_tuple = 1  # type: ignore[misc]
