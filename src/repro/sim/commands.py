"""Commands that simulated threads yield to the event loop.

A simulated thread is a Python generator.  Whenever it needs simulated time
to pass it ``yield``\\ s one of the command objects below and is resumed by
:class:`~repro.sim.engine.Simulator` once the command completes:

* :class:`CpuCommand` -- burn CPU cycles on the (shared) core pool.
* :class:`IoCommand` -- read bytes from a disk device.
* :class:`SleepCommand` -- wait for a fixed simulated duration.
* :data:`BLOCK` -- park until another thread calls ``sim.unblock(thread)``;
  the building block for all higher-level synchronization in
  :mod:`repro.sim.sync`.

The lowercase factory aliases (:func:`CPU`, :func:`IO`, :func:`SLEEP`) are
what engine code uses, e.g. ``yield CPU(1_000_000, "hashing")``.
"""

from __future__ import annotations


class CpuCommand:
    """Consume ``cycles`` CPU cycles, attributed to a breakdown ``category``.

    Categories mirror the paper's Figure 11/12 CPU-time breakdown:
    ``hashing``, ``joins``, ``aggregation``, ``scans``, ``locks``, ``misc``.

    ``rest`` holds further ``(cycles, category)`` charges fused into this
    command (see :func:`CPU_FUSED`).  The CPU pool consumes the charges
    *sequentially* -- each part is metered and accounted exactly as if the
    thread had yielded it separately -- but the whole sequence costs one
    generator resume and one dispatch instead of one per charge.  Simulated
    times and metrics are bit-identical to the unfused equivalent.

    Commands are immutable by contract (the engine yields the same cached
    instance for fixed-cost charges, e.g. an SPL's per-page read); hand
    rolled rather than a frozen dataclass because hot loops create them by
    the hundred thousand and ``object.__setattr__`` per field is measurable
    there.
    """

    __slots__ = ("cycles", "category", "rest")

    def __init__(
        self,
        cycles: float,
        category: str = "misc",
        rest: tuple[tuple[float, str], ...] = (),
    ):
        self.cycles = cycles
        self.category = category
        self.rest = rest

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CpuCommand(cycles={self.cycles!r}, category={self.category!r}, rest={self.rest!r})"


class IoCommand:
    """Read ``nbytes`` from disk device ``device`` (a name registered on the
    simulator).  ``sequential=False`` models random access and is charged a
    device-specific penalty."""

    __slots__ = ("device", "nbytes", "sequential")

    def __init__(self, device: str, nbytes: float, sequential: bool = True):
        self.device = device
        self.nbytes = nbytes
        self.sequential = sequential

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IoCommand(device={self.device!r}, nbytes={self.nbytes!r}, sequential={self.sequential!r})"


class SleepCommand:
    """Suspend the thread for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SleepCommand(delay={self.delay!r})"


class _BlockCommand:
    """Singleton command: park until explicitly unblocked."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BLOCK"


#: Yield this to park the current thread until ``sim.unblock(thread)``.
BLOCK = _BlockCommand()


def CPU(cycles: float, category: str = "misc") -> CpuCommand:
    """Factory for :class:`CpuCommand` (reads naturally at yield sites)."""
    return CpuCommand(cycles, category)


def CPU_FUSED(*cmds: CpuCommand) -> CpuCommand:
    """Fuse consecutive CPU charges into one command.

    Hot worker loops that would yield several back-to-back ``CpuCommand``\\ s
    (e.g. a join's ``hashing`` then ``build`` charge per batch) yield one
    fused command instead, eliminating a generator resume, a dispatch and a
    completion event per elided charge.  Only use this for charges with *no
    observable side effects between them* -- pure Python computation between
    the original yields is fine (the simulator cannot see it), but anything
    touching queues, conditions or packet state must stay between separate
    yields.
    """
    n = len(cmds)
    if n == 2:  # the common call shapes, unrolled (hot path)
        a, b = cmds
        return CpuCommand(
            a.cycles, a.category, a.rest + ((b.cycles, b.category),) + b.rest
        )
    if n == 3:
        a, b, c = cmds
        return CpuCommand(
            a.cycles,
            a.category,
            a.rest
            + ((b.cycles, b.category),)
            + b.rest
            + ((c.cycles, c.category),)
            + c.rest,
        )
    if n == 1:
        return cmds[0]
    if not cmds:
        raise ValueError("CPU_FUSED needs at least one command")
    first = cmds[0]
    rest: list[tuple[float, str]] = list(first.rest)
    for c in cmds[1:]:
        rest.append((c.cycles, c.category))
        rest.extend(c.rest)
    return CpuCommand(first.cycles, first.category, tuple(rest))


def IO(device: str, nbytes: float, sequential: bool = True) -> IoCommand:
    """Factory for :class:`IoCommand`."""
    return IoCommand(device, nbytes, sequential)


def SLEEP(delay: float) -> SleepCommand:
    """Factory for :class:`SleepCommand`."""
    return SleepCommand(delay)


Command = CpuCommand | IoCommand | SleepCommand | _BlockCommand
