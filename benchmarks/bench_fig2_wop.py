"""Paper Figure 2b: step vs linear Window of Opportunity gain curves."""

from repro.bench.experiments import fig2_wop


def bench_fig2_wop(once, save_report):
    result = once(fig2_wop)
    save_report("fig2_wop", result.render())
    # Step: all-or-nothing at the output cliff.
    assert result.data["step_gain_%"][0] == 100.0
    assert result.data["step_gain_%"][-1] == 0.0
    # Linear: monotonically decreasing, proportional.
    lin = result.data["linear_gain_%"]
    assert lin == sorted(lin, reverse=True)
    assert lin[5] == 50.0
