"""Simulation tracing: what every thread did, when.

Attach a :class:`Tracer` to a simulator to record thread lifecycle events
(spawn, CPU bursts, I/O, blocking, completion) with simulated timestamps.
Useful for debugging engine pipelines ("who is the producer waiting on?"),
for the deadlock reports' context, and for rendering per-thread timelines.

The tracer hooks the command-dispatch path non-invasively: it wraps
:meth:`Simulator._dispatch` and :meth:`Simulator._finish`; detach restores
the originals.  Tracing is off unless explicitly attached (zero overhead on
normal runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.commands import BLOCK, CpuCommand, IoCommand, SleepCommand

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.task import SimThread


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    thread: str
    kind: str  # 'cpu' | 'io' | 'sleep' | 'block' | 'done' | 'failed'
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.thread:<32s} {self.kind:<6s} {self.detail}"


class Tracer:
    """Records thread events from a simulator.

    Parameters
    ----------
    sim:
        The simulator to trace.
    max_events:
        Ring-buffer bound; the oldest events are dropped beyond it.
    thread_filter:
        Optional predicate on thread names; events from non-matching
        threads are not recorded.
    """

    def __init__(
        self,
        sim: "Simulator",
        max_events: int = 100_000,
        thread_filter: Callable[[str], bool] | None = None,
    ):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.sim = sim
        self.max_events = max_events
        self.thread_filter = thread_filter
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._orig_dispatch: Any = None
        self._orig_finish: Any = None

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._orig_dispatch is not None

    def attach(self) -> "Tracer":
        """Hook the simulator's dispatch/finish paths; returns self."""
        if self.attached:
            raise RuntimeError("tracer already attached")
        sim = self.sim
        self._orig_dispatch = sim._dispatch
        self._orig_finish = sim._finish

        def dispatch(thread: "SimThread", cmd: Any) -> None:
            self._record_command(thread, cmd)
            self._orig_dispatch(thread, cmd)

        def finish(thread: "SimThread", result: Any = None, error: Any = None) -> None:
            self._record(
                thread.name,
                "failed" if error is not None else "done",
                repr(error) if error is not None else "",
            )
            self._orig_finish(thread, result=result, error=error)

        sim._dispatch = dispatch  # type: ignore[method-assign]
        sim._finish = finish  # type: ignore[method-assign]
        # _resume's inline CPU branch would bypass the wrapper; disable it
        # so the hook sees every command.
        sim._fast_resume = False
        return self

    def detach(self) -> None:
        """Restore the simulator's original dispatch/finish paths."""
        if not self.attached:
            return
        self.sim._dispatch = self._orig_dispatch  # type: ignore[method-assign]
        self.sim._finish = self._orig_finish  # type: ignore[method-assign]
        self.sim._fast_resume = self.sim._fuse and "_dispatch" not in self.sim.__dict__
        self._orig_dispatch = None
        self._orig_finish = None

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _record_command(self, thread: "SimThread", cmd: Any) -> None:
        if isinstance(cmd, CpuCommand):
            self._record(thread.name, "cpu", f"{cmd.cycles:.3g} cycles [{cmd.category}]")
        elif isinstance(cmd, IoCommand):
            mode = "seq" if cmd.sequential else "rand"
            self._record(thread.name, "io", f"{cmd.nbytes:.3g} B {mode} on {cmd.device}")
        elif isinstance(cmd, SleepCommand):
            self._record(thread.name, "sleep", f"{cmd.delay:.3g} s")
        elif cmd is BLOCK:
            self._record(thread.name, "block")

    def _record(self, thread: str, kind: str, detail: str = "") -> None:
        if self.thread_filter is not None and not self.thread_filter(thread):
            return
        if len(self.events) >= self.max_events:
            del self.events[0]
            self.dropped += 1
        self.events.append(TraceEvent(self.sim.now, thread, kind, detail))

    # ------------------------------------------------------------------
    def render(self, limit: int | None = None) -> str:
        """The trace as text, newest-last."""
        events = self.events if limit is None else self.events[-limit:]
        header = f"# {len(self.events)} events ({self.dropped} dropped)"
        return "\n".join([header, *(str(e) for e in events)])

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-thread event-kind counts."""
        out: dict[str, dict[str, int]] = {}
        for e in self.events:
            out.setdefault(e.thread, {}).setdefault(e.kind, 0)
            out[e.thread][e.kind] += 1
        return out
