"""Result-cache recurrence sweep: p95 latency vs template-recurrence rate.

The shared result cache pays off exactly when sub-plans recur (dashboards,
canned reports); when nothing recurs it must cost nothing.  The sweep
serves the ``recurring:<rate>`` workload -- a fraction ``rate`` of queries
repeats one of a small fixed pool of Q3.2 templates, the rest are fresh
random instances -- with the cache off and on, and checks:

* at 0% recurrence the cache is free: p95 within +/-2% of cache-off (the
  fill consumers ride the hosts' SPLs without touching their critical
  paths; probes are signature lookups);
* p95 improvement grows monotonically with the recurrence rate;
* at 50% recurrence the cache cuts p95 by at least 20%.

Runs standalone too (the CI smoke): ``python benchmarks/bench_result_cache.py --fast``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import format_table
from repro.data import generate_ssb
from repro.server import serve
from repro.storage.manager import StorageConfig

FAST_RATES = (0.0, 0.25, 0.5)
FULL_RATES = (0.0, 0.25, 0.5, 0.75)
CACHE_MB = 64.0


def _storage(cache_on: bool) -> StorageConfig:
    if not cache_on:
        return StorageConfig(resident="memory")
    return StorageConfig(resident="memory", result_cache_bytes=CACHE_MB * 1024 * 1024)


def sweep(full: bool = False):
    rates = FULL_RATES if full else FAST_RATES
    duration = 10.0 if full else 5.0
    #: past the query-centric path's capacity, so queueing makes the freed
    #: work visible in the tail (an idle system hides the cache's benefit)
    arrival_rate = 16.0
    tables = generate_ssb(0.5, seed=23).tables
    cells = {}
    for rate in rates:
        for cache_on in (False, True):
            cells[(rate, cache_on)] = serve(
                tables,
                policy="adaptive",
                arrival="poisson",
                rate=arrival_rate,
                duration=duration,
                seed=1,
                workload=f"recurring:{rate}",
                storage_config=_storage(cache_on),
            )
    return rates, cells


def p95(report) -> float:
    return report.metrics.latency_percentiles()["p95"]


def improvement(cells, rate) -> float:
    """Fractional p95 reduction of cache-on vs cache-off at ``rate``."""
    off, on = p95(cells[(rate, False)]), p95(cells[(rate, True)])
    return (off - on) / off if off > 0 else 0.0


def render(rates, cells) -> str:
    rows = []
    for rate in rates:
        off, on = cells[(rate, False)], cells[(rate, True)]
        stats = on.metrics.cache_stats
        rows.append(
            [
                f"{rate:.0%}",
                on.metrics.completed,
                f"{p95(off):.3f}",
                f"{p95(on):.3f}",
                f"{improvement(cells, rate):+.1%}",
                f"{stats.get('hits', 0)}/{stats.get('misses', 0)}",
                on.metrics.cache_routed,
                stats.get("evictions", 0),
            ]
        )
    return format_table(
        f"result cache sweep: recurring:<rate>, {CACHE_MB:.0f} MB benefit-policy cache",
        ["recur", "done", "p95 off", "p95 on", "gain", "hit/miss", "routed", "evict"],
        rows,
    )


def check(rates, cells) -> None:
    # No-recurrence runs must not regress: the cache adds only fill
    # consumers on host SPLs and signature probes.
    assert abs(improvement(cells, 0.0)) <= 0.02, (
        f"cache-on p95 drifted {improvement(cells, 0.0):+.1%} at 0% recurrence"
    )
    # Cache-on p95 improves monotonically as recurrence rises.  (The
    # *relative* gain over cache-off is not monotone at the top end: a
    # highly recurrent stream also overlaps more in time, so the cache-off
    # baseline itself accelerates through plain SP.)
    on = [p95(cells[(r, True)]) for r in rates]
    for lo_rate, hi_rate in zip(on, on[1:]):
        assert hi_rate <= lo_rate * 1.02, f"cache-on p95 not monotone in recurrence: {on}"
    # And the payoff is substantial once half the stream recurs.
    assert improvement(cells, 0.5) >= 0.20, (
        f"only {improvement(cells, 0.5):+.1%} p95 gain at 50% recurrence"
    )
    # The cache-on runs actually exercised the machinery end to end.
    half = cells[(0.5, True)].metrics
    assert half.cache_stats["hits"] > 0
    assert half.cache_routed > 0


def bench_result_cache(once, save_report, full_mode):
    rates, cells = once(sweep, full=full_mode)
    save_report("result_cache", render(rates, cells))
    check(rates, cells)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--fast", action="store_true", help="CI smoke parameters (default)")
    mode.add_argument("--full", action="store_true", help="paper-scale sweep")
    args = parser.parse_args(argv)
    rates, cells = sweep(full=args.full)
    print(render(rates, cells))
    check(rates, cells)
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
