"""Partitioning properties: true partition, determinism, merge equality.

Property-based (hypothesis): for ANY row count, shard count, placement
mode and salt, the assignment is a true partition of the rows; and partial
aggregates computed over ANY partition of a weighted row multiset merge to
EXACTLY the state of aggregating the whole multiset at once (exact
arithmetic makes the reduction associative and commutative -- this is the
algebraic core of the shard tier's byte-identical determinism contract).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.expr import Col
from repro.query.merge import PartialAggregator, finalize_rows, merge_states
from repro.query.plan import AggSpec
from repro.shard.partition import PARTITION_MODES, assign_shards, partition_table, shard_tables
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

# ---------------------------------------------------------------------------
# assign_shards / partition_table
# ---------------------------------------------------------------------------


@given(
    n_rows=st.integers(0, 400),
    n_shards=st.integers(1, 16),
    mode=st.sampled_from(PARTITION_MODES),
    salt=st.integers(0, 2**31 - 1),
)
def test_assignment_is_a_true_partition(n_rows, n_shards, mode, salt):
    a = assign_shards(n_rows, n_shards, mode, salt)
    # Every row gets exactly one shard, and that shard exists.
    assert len(a) == n_rows
    assert all(0 <= s < n_shards for s in a)
    # Deterministic: the parent and every worker compute the same placement.
    assert a == assign_shards(n_rows, n_shards, mode, salt)


@given(n_rows=st.integers(0, 400), n_shards=st.integers(1, 16))
def test_range_mode_is_contiguous(n_rows, n_shards):
    a = assign_shards(n_rows, n_shards, "range")
    assert a == sorted(a)  # contiguous blocks, in order


_SCHEMA = Schema([Column("k", "int"), Column("v", "float")], row_bytes=16.0)


@given(
    n_rows=st.integers(0, 120),
    n_shards=st.integers(1, 8),
    mode=st.sampled_from(PARTITION_MODES),
    salt=st.integers(0, 1000),
)
@settings(max_examples=50)
def test_partition_table_preserves_rows_and_metadata(n_rows, n_shards, mode, salt):
    rows = [(i, float(i) * 0.5) for i in range(n_rows)]
    table = Table("t", _SCHEMA, rows, row_weight=1000.0, tuples_per_page=16)
    parts = partition_table(table, n_shards, mode, salt)
    assert len(parts) == n_shards
    scattered = [r for p in parts for r in p.iter_rows()]
    assert sorted(scattered) == rows  # nothing lost, nothing duplicated
    for p in parts:
        assert p.name == table.name
        assert p.schema is table.schema
        assert p.row_weight == table.row_weight


def test_shard_tables_replicates_dims_and_validates():
    dim = Table("d", _SCHEMA, [(1, 1.0)])
    fact = Table("f", _SCHEMA, [(i, 0.0) for i in range(10)])
    view = shard_tables({"f": fact, "d": dim}, "f", 0, 2, "range")
    assert view["d"] is dim  # replicated by reference
    assert view["f"].num_rows == 5
    import pytest

    with pytest.raises(ValueError):
        shard_tables({"f": fact}, "nope", 0, 2)
    with pytest.raises(ValueError):
        shard_tables({"f": fact}, "f", 2, 2)


# ---------------------------------------------------------------------------
# the merge algebra: sharded == unsharded, exactly, for ANY partition
# ---------------------------------------------------------------------------

_AGGS = (
    AggSpec("sum", Col("v"), "s"),
    AggSpec("count", None, "n"),
    AggSpec("avg", Col("v"), "a"),
    AggSpec("min", Col("v"), "lo"),
    AggSpec("max", Col("v"), "hi"),
)

_value = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False, width=32
)
_batch = st.tuples(
    st.lists(st.tuples(st.integers(0, 3), _value), min_size=1, max_size=8),
    st.sampled_from((1.0, 2.5, 1000.0)),  # batch weight
    st.integers(0, 7),  # shard the batch lands on (mod n_shards)
)


@given(batches=st.lists(_batch, max_size=12), n_shards=st.integers(1, 8))
@settings(max_examples=120)
def test_merged_partials_equal_unsharded_state_exactly(batches, n_shards):
    shards = [PartialAggregator(("k",), _AGGS, _SCHEMA) for _ in range(n_shards)]
    whole = PartialAggregator(("k",), _AGGS, _SCHEMA)
    for rows, weight, shard in batches:
        rows = [(k, v) for k, v in rows]
        shards[shard % n_shards].consume(rows, weight)
        whole.consume(rows, weight)
    merged = merge_states(_AGGS, [s.state() for s in shards])
    # EXACT equality of the Fraction states -- not approximate: this is
    # what makes N-shard answers byte-identical to 1-shard answers.
    assert merged == whole.state()
    order = (("s", False), ("k", True))
    assert finalize_rows(("k",), _AGGS, order, merged) == finalize_rows(
        ("k",), _AGGS, order, whole.state()
    )


@given(perm=st.permutations(list(range(5))))
def test_merge_order_does_not_matter(perm):
    aggs = (AggSpec("sum", Col("v"), "s"), AggSpec("count", None, "n"))
    parts = []
    for i in range(5):
        a = PartialAggregator(("k",), aggs, _SCHEMA)
        a.consume([(i % 2, 0.1 * (i + 1))], weight=3.0)
        parts.append(a.state())
    base = merge_states(aggs, parts)
    assert merge_states(aggs, [parts[i] for i in perm]) == base
