"""Storage manager substrate (the reproduction's Shore-MT analog).

Provides in-memory tables organized into pages, a buffer pool with LRU
eviction, an OS page-cache model beneath it (bypassable with direct I/O),
and page-read primitives that charge simulated CPU and disk time.

Tables are immutable after load (the paper's workloads are read-only OLAP
over relatively static data), which lets dataset objects be shared across
simulation runs.
"""

from repro.storage.arrangements import ARRANGEMENTS, Arrangement, ArrangementCache
from repro.storage.bufferpool import BufferPool
from repro.storage.cache import OsPageCache
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.page import (
    Batch,
    ColumnBatch,
    ColumnPage,
    Page,
    full_mask,
    mask_to_sel,
    sel_to_mask,
)
from repro.storage.schema import Column, Schema
from repro.storage.table import Table

__all__ = [
    "ARRANGEMENTS",
    "Arrangement",
    "ArrangementCache",
    "Batch",
    "BufferPool",
    "Column",
    "ColumnBatch",
    "ColumnPage",
    "OsPageCache",
    "Page",
    "Schema",
    "StorageConfig",
    "StorageManager",
    "Table",
    "full_mask",
    "mask_to_sel",
    "sel_to_mask",
]
