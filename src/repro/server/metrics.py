"""Service-level metrics: the SLO view of a simulation run.

:class:`ServiceMetrics` extends the simulator's
:class:`~repro.sim.metrics.Metrics` (it *replaces* ``sim.metrics``, so CPU
breakdown and sharing events keep accumulating in the same object) with the
measurements a serving system reports against its SLOs:

* end-to-end latency percentiles (p50/p95/p99), measured from **arrival**
  -- queue wait included, which is what a client experiences;
* queue-wait percentiles and depth-at-admission;
* throughput (completed queries per second over the serving window);
* admission counters: arrived / admitted / dropped (queue full) /
  timed out (shed after exceeding the queueing deadline) / completed;
* per-route counts, so routing policies can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.metrics import REPORT_PERCENTILES, Metrics, percentile_block

__all__ = ["REPORT_PERCENTILES", "ServiceMetrics"]


@dataclass
class ServiceMetrics(Metrics):
    """Metrics for one :class:`~repro.server.service.QueryService` run."""

    #: end-to-end latencies (completion - arrival), one per completed query
    latencies: list[float] = field(default_factory=list)
    #: time spent in the admission queue, one per dispatched query
    queue_waits: list[float] = field(default_factory=list)
    arrived: int = 0
    admitted: int = 0
    dropped: int = 0
    timed_out: int = 0
    completed: int = 0
    #: completed queries per routing decision (e.g. "query-centric", "gqp")
    routed: dict[str, int] = field(default_factory=dict)
    #: queries routed query-centric by the cache discount (a likely result-
    #: cache hit bypasses the routing policy: it will replay, not recompute)
    cache_routed: int = 0
    #: end-to-end latency split: queries served from the result cache vs
    #: computed -- the "hit-served" latency view of the cache's benefit
    cache_hit_latencies: list[float] = field(default_factory=list)
    cache_miss_latencies: list[float] = field(default_factory=list)
    #: ResultCache.stats() snapshot, filled in after the run by serve()
    cache_stats: dict[str, Any] = field(default_factory=dict)

    # -- recording ------------------------------------------------------
    def record_arrival(self) -> None:
        self.arrived += 1

    def record_admit(self) -> None:
        self.admitted += 1

    def record_drop(self) -> None:
        self.dropped += 1

    def record_timeout(self, queue_wait: float) -> None:
        self.timed_out += 1
        self.queue_waits.append(queue_wait)

    def record_dispatch(self, queue_wait: float, route: str) -> None:
        self.queue_waits.append(queue_wait)
        self.routed[route] = self.routed.get(route, 0) + 1

    def record_cache_route(self) -> None:
        self.cache_routed += 1

    def record_completion(self, latency: float, cache_served: bool = False) -> None:
        self.completed += 1
        self.latencies.append(latency)
        if cache_served:
            self.cache_hit_latencies.append(latency)
        else:
            self.cache_miss_latencies.append(latency)

    # -- derived --------------------------------------------------------
    @property
    def in_system(self) -> int:
        """Admitted queries not yet completed or shed (0 after a clean
        drain)."""
        return self.admitted - self.completed - self.timed_out

    def latency_percentiles(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` over completed queries
        (zeros when nothing completed -- an idle report stays well-formed)."""
        return percentile_block(self.latencies)

    def queue_wait_percentiles(self) -> dict[str, float]:
        return percentile_block(self.queue_waits)

    def cache_latency_split(self) -> dict[str, dict[str, float]]:
        """Hit-served vs computed latency percentiles (with counts)."""
        return {
            "hit_served": percentile_block(self.cache_hit_latencies, include_count=True),
            "computed": percentile_block(self.cache_miss_latencies, include_count=True),
        }

    def throughput(self, window: float) -> float:
        """Completed queries per second over ``window`` seconds."""
        return self.completed / window if window > 0 else 0.0

    # -- export ---------------------------------------------------------
    def to_dict(self, hz: float | None = None, window: float | None = None) -> dict[str, Any]:
        """Everything :meth:`Metrics.to_dict` reports, plus the service
        level: percentiles, counters, throughput (when ``window`` given)."""
        out = super().to_dict(hz)
        out.update(
            {
                "latency": self.latency_percentiles(),
                "queue_wait": self.queue_wait_percentiles(),
                "arrived": self.arrived,
                "admitted": self.admitted,
                "dropped": self.dropped,
                "timed_out": self.timed_out,
                "completed": self.completed,
                "routed": dict(self.routed),
            }
        )
        if self.cache_stats or self.cache_routed or self.cache_hit_latencies:
            cache = dict(self.cache_stats)
            cache["routed_discount"] = self.cache_routed
            cache["latency"] = self.cache_latency_split()
            out["result_cache"] = cache
        if self.latencies:
            out["latency"]["mean"] = sum(self.latencies) / len(self.latencies)
            out["latency"]["max"] = max(self.latencies)
        if window is not None:
            out["window_seconds"] = window
            out["throughput_qps"] = self.throughput(window)
        return out
