"""Data exchange between packets: the push-based FIFO model.

The original QPipe exchanges pages through per-consumer FIFO buffers with a
push-only model: during SP, the host packet's thread *copies* every result
page into every satellite's FIFO.  That copy loop is the serialization point
Section 4 of the paper identifies -- it sits on the producer's critical path
and grows linearly with the number of satellites.

:class:`FifoExchange` implements that model.  ``open_reader`` may be called
multiple times; the first reader is the packet's own output FIFO (no copy
charge), each further reader is a satellite FIFO that the producer pays
``copy_tuple x rows`` cycles to fill.  Readers may carry a page *budget*
(used by circular scans: a consumer joining mid-scan needs exactly
``num_pages`` pages from its point of entry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import CPU, CPU_FUSED
from repro.sim.sync import Condition
from repro.storage.page import Batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Simulator


class _EndOfStream:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "END"


#: Returned by ``Reader.read`` when the stream is exhausted.
END = _EndOfStream()


class _FifoQueue:
    """A bounded queue of batches with sim-time blocking."""

    def __init__(self, sim: "Simulator", capacity: int, name: str):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: list[Batch] = []
        self._closed = False
        self._not_empty = Condition(sim, f"{name}.ne")
        self._not_full = Condition(sim, f"{name}.nf")

    def put(self, batch: Batch) -> Iterator[Any]:
        """Append a batch; blocks while full (drops silently once closed)."""
        while len(self._items) >= self.capacity and not self._closed:
            yield from self._not_full.wait()
        if self._closed:
            return  # consumer went away; drop silently
        self._items.append(batch)
        self._not_empty.notify_all()

    def get(self) -> Iterator[Any]:
        """Next batch, or END once closed and drained."""
        while not self._items:
            if self._closed:
                return END
            yield from self._not_empty.wait()
        batch = self._items.pop(0)
        self._not_full.notify_all()
        return batch

    def close(self) -> None:
        """Close: wake producers and consumers; further gets drain then END."""
        self._closed = True
        self._not_empty.notify_all()
        self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed


class FifoReader:
    """Consumer handle of one FIFO."""

    def __init__(self, queue: _FifoQueue):
        self._queue = queue

    def read(self) -> Iterator[Any]:
        batch = yield from self._queue.get()
        return batch


class _ConsumerSlot:
    __slots__ = ("queue", "budget", "is_primary")

    def __init__(self, queue: _FifoQueue, budget: int | None, is_primary: bool):
        self.queue = queue
        self.budget = budget
        self.is_primary = is_primary


class FifoExchange:
    """Push-based page exchange with per-satellite copy costs."""

    kind = "fifo"

    def __init__(self, sim: "Simulator", cost: "CostModel", capacity: int, name: str):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.cost = cost
        self.capacity = capacity
        self.name = name
        self._slots: list[_ConsumerSlot] = []
        self._closed = False
        self.pages_emitted = 0
        # Fixed per-page bookkeeping charge, built once (emit yields the
        # cached immutable instance).
        self._overhead_charge = CPU(cost.fifo_page_overhead, "misc")

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def active_consumers(self) -> int:
        return sum(
            1 for s in self._slots if not s.queue.closed and (s.budget is None or s.budget > 0)
        )

    def open_reader(self, budget: int | None = None) -> FifoReader:
        """Add a consumer FIFO (first = primary; later ones are satellites that receive copies), optionally page-budgeted."""
        if self._closed:
            raise RuntimeError(f"open_reader on closed exchange {self.name!r}")
        queue = _FifoQueue(self.sim, self.capacity, f"{self.name}.q{len(self._slots)}")
        self._slots.append(_ConsumerSlot(queue, budget, is_primary=not self._slots))
        return FifoReader(queue)

    # ------------------------------------------------------------------
    def emit(self, batch: Batch, lead=None) -> Iterator[Any]:
        """Producer: push ``batch`` to every open consumer FIFO.

        The producer thread pays the FIFO bookkeeping for its own output and
        a full copy per satellite -- the push-based serialization point.
        ``lead`` (fast mode) is an extra CPU charge fused in front of the
        bookkeeping charge -- legal because nothing observable happens
        between those yields."""
        self.pages_emitted += 1
        overhead = self._overhead_charge
        if lead is not None and overhead.cycles > 0:
            yield CPU_FUSED(lead, overhead)
        else:
            if lead is not None:
                yield lead
            yield overhead
        for slot in self._slots:
            if slot.queue.closed:
                continue
            if slot.budget is not None:
                if slot.budget <= 0:
                    continue
                slot.budget -= 1
            if slot.is_primary:
                yield from slot.queue.put(batch)
            else:
                yield self.cost.copy(len(batch), batch.weight)
                yield self._overhead_charge
                yield from slot.queue.put(batch.copy())
            if slot.budget == 0:
                slot.queue.close()

    def close(self) -> None:
        self._closed = True
        for slot in self._slots:
            slot.queue.close()
