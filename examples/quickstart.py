#!/usr/bin/env python3
"""Quickstart: run one SSB star query on the simulated 24-core server.

Builds an SSB database (scale factor 1), runs SSB Q3.2 through the
QPipe-SP engine (circular scans + join-level Simultaneous Pipelining),
and prints the query results plus the simulator's measurements.

    python examples/quickstart.py
"""

from repro.data import generate_ssb
from repro.engine import QPIPE_SP, QPipeEngine
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import PAPER_MACHINE
from repro.storage import StorageConfig, StorageManager


def main() -> None:
    # 1. A dataset: SSB at scale factor 1 (stands for 6M lineorder rows).
    dataset = generate_ssb(sf=1.0, seed=42)
    print(f"SSB SF=1: {dataset.lineorder.num_rows} generated lineorder rows "
          f"representing {dataset.lineorder.real_rows:,.0f} real rows")

    # 2. The simulated server (the paper's testbed: 24 cores @ 1.86 GHz).
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(
        sim,
        DEFAULT_COST_MODEL,
        dataset.tables,
        StorageConfig(resident="memory"),  # the paper's RAM-drive setup
    )

    # 3. The execution engine: QPipe with Simultaneous Pipelining.
    engine = QPipeEngine(sim, storage, QPIPE_SP)

    # 4. A star query: SSB Q3.2 (Figure 9 of the paper).
    spec = q32(
        nation_customer="UNITED STATES",
        nation_supplier="CHINA",
        year_low=1993,
        year_high=1996,
    )
    handle = engine.submit(spec)

    # 5. Run the simulation to completion and inspect the results.
    sim.run()
    print(f"\nQ3.2 finished in {handle.response_time:.2f} simulated seconds "
          f"using {sim.avg_cores_used():.1f} cores on average")
    print(f"result rows ({len(handle.results)}):")
    print(f"{'c_city':12s} {'s_city':12s} {'year':>5s} {'revenue':>18s}")
    for c_city, s_city, year, revenue in handle.results[:10]:
        print(f"{c_city:12s} {s_city:12s} {year:5d} {revenue:18,.0f}")
    if len(handle.results) > 10:
        print(f"... and {len(handle.results) - 10} more rows")


if __name__ == "__main__":
    main()
