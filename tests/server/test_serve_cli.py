"""CLI smoke tests for ``python -m repro serve`` and the ``list`` polish."""

import json

import pytest

from repro.cli import main

FAST = ["--rate", "2", "--duration", "1", "--sf", "0.5", "--seed", "5"]


class TestServe:
    def test_smoke_text_report(self, capsys):
        assert main(["serve", "--policy", "static", *FAST]) == 0
        out = capsys.readouterr().out
        assert "latency p95 (s)" in out
        assert "throughput (q/s)" in out

    def test_json_report(self, capsys):
        assert main(["serve", "--policy", "adaptive", *FAST, "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["policy"] == "adaptive"
        for key in ("p50", "p95", "p99"):
            assert key in payload["latency"]
        for key in ("throughput_qps", "admitted", "dropped", "timed_out", "completed"):
            assert key in payload

    def test_unknown_policy_one_line_exit(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--policy", "mystery", *FAST])
        assert exc.value.code == "repro serve: unknown policy 'mystery' (choose from: static, adaptive)"
        assert "\n" not in str(exc.value.code)

    def test_unknown_arrival_one_line_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--arrival", "tsunami", *FAST])
        assert "unknown arrival" in str(exc.value.code)
        assert "\n" not in str(exc.value.code)

    def test_unknown_workload_one_line_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--workload", "everything", *FAST])
        assert "unknown serve workload" in str(exc.value.code)

    def test_missing_trace_file_one_line_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--arrival", "trace", "--trace", "/nonexistent/trace.txt", *FAST])
        assert str(exc.value.code).startswith("repro serve:")

    def test_bad_service_config_one_line_exit(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--queue-capacity", "0", *FAST])
        assert "queue_capacity" in str(exc.value.code)


class TestListPolicies:
    def test_list_shows_policies_and_arrivals(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "policies (serve)" in out
        assert "static" in out and "adaptive" in out
        assert "arrivals (serve)" in out
        assert "poisson" in out and "burst" in out
