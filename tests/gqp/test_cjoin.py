"""Unit tests for the CJOIN pipeline internals."""

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPipeEngine
from repro.gqp.bitmap import SlotAllocator
from repro.query.ssb_queries import q11, q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=33)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config=CJOIN, resident="memory"):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident=resident))
    return sim, QPipeEngine(sim, storage, config)


class TestSlotAllocator:
    def test_alloc_monotonic_then_reuse(self):
        a = SlotAllocator()
        assert [a.alloc() for _ in range(3)] == [0, 1, 2]
        a.retire(1)
        # Retired slots are not reusable until reclaim.
        assert a.alloc() == 3
        a.reclaim()
        assert a.alloc() == 1

    def test_retired_mask(self):
        a = SlotAllocator()
        s0, s1, s2 = a.alloc(), a.alloc(), a.alloc()
        a.retire(s0)
        a.retire(s2)
        assert a.retired_mask() == 0b101
        assert sorted(a.reclaim()) == [0, 2]
        assert a.retired_mask() == 0

    def test_live_count(self):
        a = SlotAllocator()
        a.alloc()
        a.alloc()
        a.retire(0)
        assert a.live == 1
        assert a.high_water == 2

    def test_retire_unallocated_rejected(self):
        with pytest.raises(ValueError):
            SlotAllocator().retire(0)


class TestPipelineLifecycle:
    def test_filters_created_per_dimension(self, ssb):
        sim, eng = make_engine(ssb)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        pipeline = eng.cjoin_stage.pipeline_for("lineorder")
        # Query done: filters were dropped only at next admission; the
        # chain still holds the three dimensions.
        assert set(pipeline.filters) <= {"supplier", "customer", "date"}

    def test_filters_garbage_collected_after_completion(self, ssb):
        sim, eng = make_engine(ssb)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        pipeline = eng.cjoin_stage.pipeline_for("lineorder")
        # Submit a query touching only the date dimension: admission first
        # reclaims retired slots and drops unreferenced filters.
        h = eng.submit(q11(1993, 1.0, 3.0, 25))
        sim.run()
        assert set(pipeline.filters) == {"date"}
        assert h.done

    def test_slot_reuse_after_completion(self, ssb):
        sim, eng = make_engine(ssb)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        pipeline = eng.cjoin_stage.pipeline_for("lineorder")
        eng.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
        sim.run()
        # The second query reused slot 0 after reclamation.
        assert pipeline.slots.high_water == 1

    def test_sequential_queries_extend_filters_incrementally(self, ssb):
        """A new star query referencing an existing dimension reuses its
        filter; new dimensions add filters."""
        sim, eng = make_engine(ssb)
        h1 = eng.submit(q11(1993, 1.0, 3.0, 25))  # date only
        h2 = eng.submit(q32("CHINA", "FRANCE", 1993, 1996))  # 3 dims
        sim.run()
        assert h1.done and h2.done
        assert sim.metrics.counts["cjoin_queries_admitted"] == 2

    def test_admission_time_recorded(self, ssb):
        sim, eng = make_engine(ssb)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        assert sim.metrics.durations["cjoin_admission"] > 0

    def test_fact_predicate_applied_at_distributor(self, ssb):
        """Q1.1 has fact predicates; CJOIN applies them on output tuples
        (Section 3.2) -- results must still match the oracle."""
        spec = q11(1993, 1.0, 3.0, 25)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb)
        h = eng.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    def test_interleaved_admission_mid_scan(self, ssb):
        """A query submitted while the circular fact scan is mid-flight is
        admitted between pages and still computes exact results (its point
        of entry wraps around)."""
        spec_a = q32("CHINA", "FRANCE", 1993, 1996)
        spec_b = q32("JAPAN", "BRAZIL", 1992, 1995)
        oracle_b = norm(evaluate_plan(spec_b.to_query_centric_plan(ssb.tables)))

        sim, eng = make_engine(ssb)
        eng.submit(spec_a)

        h_holder = {}

        def late_submitter():
            from repro.sim.commands import SLEEP

            yield SLEEP(0.3)  # mid-scan of query A
            h_holder["h"] = eng.submit(spec_b)

        sim.spawn(late_submitter(), "late")
        sim.run()
        assert norm(h_holder["h"].results) == oracle_b
        assert sim.metrics.counts["cjoin_admission_batches"] == 2

    def test_bitmap_width_tracks_concurrency(self, ssb):
        sim, eng = make_engine(ssb)
        for i in range(5):
            eng.submit(q32("CHINA", "FRANCE", 1992 + i, 1996))
        sim.run()
        pipeline = eng.cjoin_stage.pipeline_for("lineorder")
        assert pipeline.slots.high_water == 5

    def test_cjoin_sp_satellite_skips_admission_costs(self, ssb):
        """CJOIN-SP: admission happens once for N identical queries."""
        spec = q32("CHINA", "FRANCE", 1993, 1996)

        def admission_time(config, n):
            sim, eng = make_engine(ssb, config)
            for _ in range(n):
                eng.submit(spec)
            sim.run()
            return sim.metrics.durations["cjoin_admission"]

        assert admission_time(CJOIN_SP, 8) < admission_time(CJOIN, 8)
