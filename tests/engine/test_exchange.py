"""Tests for the push-based FIFO exchange."""

import pytest

from repro.engine.exchange import END, FifoExchange
from repro.sim import Simulator
from repro.sim.costmodel import CostModel
from repro.sim.machine import MachineSpec
from repro.storage.page import Batch


def make_sim():
    return Simulator(MachineSpec(cores=8, hz=1e9, oversub_penalty=0.0))


def batch(i):
    return Batch([(i,)], weight=1.0)


class TestFifoExchange:
    def test_single_consumer_roundtrip(self):
        sim = make_sim()
        ex = FifoExchange(sim, CostModel(), capacity=4, name="x")
        reader = ex.open_reader()
        got = []

        def producer():
            for i in range(10):
                yield from ex.emit(batch(i))
            ex.close()

        def consumer():
            while True:
                b = yield from reader.read()
                if b is END:
                    break
                got.append(b.rows[0][0])

        sim.spawn(producer(), "p")
        sim.spawn(consumer(), "c")
        sim.run()
        assert got == list(range(10))

    def test_satellite_gets_copies(self):
        sim = make_sim()
        ex = FifoExchange(sim, CostModel(), capacity=4, name="x")
        primary = ex.open_reader()
        satellite = ex.open_reader()
        got_p, got_s = [], []

        def producer():
            b = batch(7)
            yield from ex.emit(b)
            b.rows.append((8,))  # mutate after emit: satellite must have a copy
            ex.close()

        def consumer(r, out):
            while True:
                b = yield from r.read()
                if b is END:
                    break
                out.append(tuple(b.rows))

        sim.spawn(producer(), "p")
        sim.spawn(consumer(primary, got_p), "cp")
        sim.spawn(consumer(satellite, got_s), "cs")
        sim.run()
        # Satellite read a copy taken at emit time.
        assert got_s == [((7,),)]

    def test_copy_cost_charged_per_satellite(self):
        """The push-based serialization point: producer cycles grow with the
        number of satellites."""

        def producer_cycles(n_consumers):
            sim = make_sim()
            cost = CostModel()
            ex = FifoExchange(sim, cost, capacity=64, name="x")
            readers = [ex.open_reader() for _ in range(n_consumers)]

            def producer():
                for i in range(16):
                    yield from ex.emit(Batch([(j,) for j in range(50)], weight=10))
                ex.close()

            def consumer(r):
                while (yield from r.read()) is not END:
                    pass

            sim.spawn(producer(), "p")
            for k, r in enumerate(readers):
                sim.spawn(consumer(r), f"c{k}")
            sim.run()
            return sim.metrics.cpu_cycles_by_category["misc"]

        one = producer_cycles(1)
        five = producer_cycles(5)
        # 4 satellites x copy cost; strictly increasing and substantial.
        assert five > one * 2

    def test_budget_closes_consumer(self):
        sim = make_sim()
        ex = FifoExchange(sim, CostModel(), capacity=4, name="x")
        reader = ex.open_reader(budget=3)
        got = []

        def producer():
            i = 0
            while ex.active_consumers:
                yield from ex.emit(batch(i))
                i += 1
            ex.close()

        def consumer():
            while True:
                b = yield from reader.read()
                if b is END:
                    break
                got.append(b.rows[0][0])

        sim.spawn(producer(), "p")
        sim.spawn(consumer(), "c")
        sim.run()
        assert got == [0, 1, 2]

    def test_bounded_capacity_backpressure(self):
        sim = make_sim()
        ex = FifoExchange(sim, CostModel(), capacity=1, name="x")
        reader = ex.open_reader()
        emitted_at = []

        def producer():
            for i in range(3):
                yield from ex.emit(batch(i))
                emitted_at.append(sim.now)
            ex.close()

        def slow_consumer():
            from repro.sim.commands import SLEEP

            while True:
                yield SLEEP(1.0)
                b = yield from reader.read()
                if b is END:
                    break

        sim.spawn(producer(), "p")
        sim.spawn(slow_consumer(), "c")
        sim.run()
        # Third emit had to wait for the consumer to free a slot.
        assert emitted_at[2] >= 1.0

    def test_open_reader_after_close_rejected(self):
        sim = make_sim()
        ex = FifoExchange(sim, CostModel(), capacity=4, name="x")
        ex.close()
        with pytest.raises(RuntimeError):
            ex.open_reader()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FifoExchange(make_sim(), CostModel(), capacity=0, name="x")
