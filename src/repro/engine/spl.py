"""Shared Pages Lists (SPL): pull-based sharing for Simultaneous Pipelining.

This is the paper's Section 4 contribution.  An SPL is a bounded linked list
of pages with **one producer and many consumers**: the producer appends at
the head and pays only its own append cost; each consumer walks the list
independently and pays its own read cost.  Sharing therefore adds *nothing*
to the producer's critical path -- the serialization point of push-based SP
disappears, and SP becomes beneficial at every concurrency level.

Design elements from the paper's Figure 8:

* a lock (charged as ``locks`` CPU per operation; contention is modelled by
  the lock's wait queue),
* per-page atomic reader counters -- the last consumer deletes the page,
* a bounded maximum size -- the producer blocks when consumers lag,
* per-consumer points of entry and page budgets for the **linear WoP**:
  a consumer joining a circular scan mid-stream is addressed exactly
  ``num_pages`` pages from its entry point; the page on which its budget
  reaches zero records it as a *finishing packet* and it stops being
  addressed by subsequent pages.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import CPU
from repro.sim.sync import Condition, Lock
from repro.storage.page import Batch

from repro.engine.exchange import END

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Simulator

_spl_ids = itertools.count()


class _SplPage:
    __slots__ = ("batch", "readers")

    def __init__(self, batch: Batch, readers: int):
        self.batch = batch
        self.readers = readers


class SplConsumer:
    """One consumer's cursor into an SPL."""

    __slots__ = ("spl", "next_seq", "addressed", "read_count", "budget", "closed_for_new", "entry_seq")

    def __init__(self, spl: "SharedPagesList", entry_seq: int, budget: int | None):
        self.spl = spl
        self.entry_seq = entry_seq  # point of entry (paper 4.2)
        self.next_seq = entry_seq
        self.addressed = 0  # pages emitted while this consumer was active
        self.read_count = 0
        self.budget = budget  # pages still to be addressed; None = unbounded
        self.closed_for_new = budget == 0

    def read(self) -> Iterator[Any]:
        batch = yield from self.spl.read(self)
        return batch


class SharedPagesList:
    """Single-producer(*) multi-consumer bounded list of pages.

    (*) The CJOIN distributor uses several distributor-part threads feeding
    one query's output; emission is lock-protected, so multiple producers
    interleave safely -- ``close`` must still be called exactly once."""

    def __init__(
        self,
        sim: "Simulator",
        cost: "CostModel",
        max_pages: int,
        name: str | None = None,
    ):
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        self.sim = sim
        self.cost = cost
        self.max_pages = max_pages
        self.name = name or f"spl{next(_spl_ids)}"
        self._pages: dict[int, _SplPage] = {}
        self._head_seq = 0
        self._consumers: list[SplConsumer] = []
        self._producer_done = False
        self._lock = Lock(sim, f"{self.name}.lock", acquire_cycles=cost.spl_lock_cycles)
        self._not_empty = Condition(sim, f"{self.name}.ne")
        self._not_full = Condition(sim, f"{self.name}.nf")
        self.pages_emitted = 0

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._producer_done

    @property
    def size(self) -> int:
        """Pages currently retained (emitted but not yet fully consumed)."""
        return len(self._pages)

    @property
    def active_consumers(self) -> int:
        """Consumers still being addressed by new pages."""
        return sum(1 for c in self._consumers if not c.closed_for_new)

    def register(self, budget: int | None = None) -> SplConsumer:
        """Add a consumer at the current head (its point of entry)."""
        consumer = SplConsumer(self, self._head_seq, budget)
        self._consumers.append(consumer)
        return consumer

    # ------------------------------------------------------------------
    def emit(self, batch: Batch) -> Iterator[Any]:
        """Producer: append one page.  Blocks while the list is at its
        maximum size.  The producer pays only its own append cost."""
        if self._producer_done:
            raise RuntimeError(f"emit on closed SPL {self.name!r}")
        yield CPU(self.cost.spl_emit_page, "misc")
        yield from self._lock.acquire()
        try:
            while len(self._pages) >= self.max_pages:
                self._lock.release()
                yield from self._not_full.wait()
                yield from self._lock.acquire()
            active = [c for c in self._consumers if not c.closed_for_new]
            if active:
                self._pages[self._head_seq] = _SplPage(batch, len(active))
                for c in active:
                    c.addressed += 1
                    if c.budget is not None:
                        c.budget -= 1
                        if c.budget == 0:
                            # Finishing packet: stop addressing it.
                            c.closed_for_new = True
            self._head_seq += 1
            self.pages_emitted += 1
            self._not_empty.notify_all()
        finally:
            self._lock.release()

    def close(self) -> None:
        """Producer finished; consumers drain and then see END."""
        self._producer_done = True
        self._not_empty.notify_all()

    # ------------------------------------------------------------------
    def read(self, consumer: SplConsumer) -> Iterator[Any]:
        """Consumer: fetch the next page addressed to it, or END."""
        while True:
            yield from self._lock.acquire()
            if consumer.read_count < consumer.addressed:
                page = self._pages[consumer.next_seq]
                batch = page.batch
                page.readers -= 1
                if page.readers == 0:
                    del self._pages[consumer.next_seq]
                    self._not_full.notify_all()
                consumer.next_seq += 1
                consumer.read_count += 1
                self._lock.release()
                yield CPU(self.cost.spl_read_page, "misc")
                return batch
            done = consumer.closed_for_new or self._producer_done
            self._lock.release()
            if done:
                return END
            yield from self._not_empty.wait()


class SplExchange:
    """Exchange facade over an SPL, mirroring :class:`FifoExchange`."""

    kind = "spl"

    def __init__(self, sim: "Simulator", cost: "CostModel", max_pages: int, name: str):
        self.spl = SharedPagesList(sim, cost, max_pages, name)
        self.name = name

    @property
    def closed(self) -> bool:
        return self.spl.closed

    @property
    def active_consumers(self) -> int:
        return self.spl.active_consumers

    @property
    def pages_emitted(self) -> int:
        return self.spl.pages_emitted

    def open_reader(self, budget: int | None = None) -> SplConsumer:
        if self.spl.closed:
            raise RuntimeError(f"open_reader on closed exchange {self.name!r}")
        return self.spl.register(budget)

    def emit(self, batch: Batch) -> Iterator[Any]:
        yield from self.spl.emit(batch)

    def close(self) -> None:
        self.spl.close()
