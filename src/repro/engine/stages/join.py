"""The hash-join stage (query-centric joins, step WoP).

One worker per host packet: build a hash table from the (filtered) build
input, then stream the probe input.  Cost charges split per the paper's
breakdown: ``hash()``/``equal()`` cycles under "hashing", build/probe
bookkeeping and output materialization under "joins".

Both hot loops run vectorized (one comprehension per batch, key indices
hoisted out of the loop) and the per-batch cycle charges are fused into a
single simulator event; neither changes the joined rows or a single
simulated tick (see :mod:`repro.engine.config`)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import CPU, CPU_FUSED
from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.engine.stages.inputs import FilteredInput
from repro.storage.page import Batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.plan import HashJoinNode


class HashJoinStage(Stage):
    """The query-centric hash-join stage (step WoP)."""
    def __init__(self, engine):
        super().__init__(engine, "join")

    def run(self, packet: Packet, probe_input: FilteredInput, build_input: FilteredInput) -> None:
        self.spawn_worker(packet, self._work(packet, probe_input, build_input))

    def _work(
        self, packet: Packet, probe_input: FilteredInput, build_input: FilteredInput
    ) -> Iterator[Any]:
        node: "HashJoinNode" = packet.node
        cost = self.engine.cost
        exchange = packet.exchange
        fuse = self.engine.config.use_fuse_charges()
        yield CPU(cost.packet_dispatch, "misc")

        # ---- build phase --------------------------------------------
        # Key index resolved once per packet, not per batch.
        build_key = build_input.schema.index(node.build_key)
        table: dict[Any, list[tuple]] = {}
        setdefault = table.setdefault
        while True:
            # Fast mode: the input hands back its per-batch charge so it
            # rides in front of our hashing/build charge -- one command
            # per batch for the whole read->filter->build chain.
            if fuse:
                batch, fc = yield from build_input.read_fused()
            else:
                batch = yield from build_input.read()
                fc = None
            if batch is END:
                break
            rows = batch.rows
            if not rows:
                if fc is not None:
                    yield build_input.fuse_next_lock(fc)
                continue
            n, w = len(rows), batch.weight
            if fuse:
                # Only pure computation follows until the next read, so the
                # next read's lock charge rides at the tail of this command.
                if fc is not None:
                    cmd = CPU_FUSED(fc, cost.hashing(n, w), cost.build(n, w))
                else:
                    cmd = CPU_FUSED(cost.hashing(n, w), cost.build(n, w))
                yield build_input.fuse_next_lock(cmd)
            else:
                yield cost.hashing(n, w)
                yield cost.build(n, w)
            for r in rows:
                setdefault(r[build_key], []).append(r)

        # ---- probe phase --------------------------------------------
        probe_key = probe_input.schema.index(node.probe_key)
        get = table.get
        empty: tuple = ()
        while True:
            if fuse:
                batch, fc = yield from probe_input.read_fused()
            else:
                batch = yield from probe_input.read()
                fc = None
            if batch is END:
                break
            rows = batch.rows
            if not rows:
                if fc is not None:
                    yield probe_input.fuse_next_lock(fc)
                continue
            n, w = len(rows), batch.weight
            out = [r + m for r in rows for m in get(r[probe_key], empty)]
            cmds = [cost.hashing(n, w, equals=len(out)), cost.probe(n, w)]
            if out:
                cmds.append(cost.emit_join(len(out), w))
            if fuse:
                if fc is not None:
                    cmds.insert(0, fc)
                fused_cmd = CPU_FUSED(*cmds)
                if not out:
                    # No emission before the next read, so its lock charge
                    # can ride at the tail (an emit in between would hold
                    # the input SPL's lock across the emit -- illegal).
                    fused_cmd = probe_input.fuse_next_lock(fused_cmd)
                yield fused_cmd
            else:
                for cmd in cmds:
                    yield cmd
            if out:
                if not packet.started_emitting:
                    packet.mark_started()
                    self.unregister(packet)  # step WoP closes
                yield from exchange.emit(Batch(out, w))

        exchange.close()
        packet.finished = True
        self.unregister(packet)
