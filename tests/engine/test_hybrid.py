"""Tests for the hybrid (dynamic sharing) engine -- the paper's concluding
recommendation implemented as a routing policy."""

import pytest

from repro.baselines import evaluate_plan
from repro.bench.runner import HYBRID, run_batch
from repro.bench.workload import q32_random_workload
from repro.data import generate_ssb
from repro.engine.hybrid import HybridEngine
from repro.query.ssb_queries import q32
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=23)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_hybrid(ssb, threshold=None):
    sim = Simulator(MachineSpec())
    storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
    return sim, HybridEngine(sim, storage, threshold=threshold)


class TestRouting:
    def test_low_concurrency_goes_query_centric(self, ssb):
        sim, hybrid = make_hybrid(ssb, threshold=8)
        for i in range(3):
            hybrid.submit(q32("CHINA", "FRANCE", 1992 + i, 1996))
        sim.run()
        assert hybrid.routed == {"query-centric": 3, "gqp": 0}

    def test_overflow_goes_to_gqp(self, ssb):
        sim, hybrid = make_hybrid(ssb, threshold=2)
        for i in range(5):
            hybrid.submit(q32("CHINA", "FRANCE", 1992 + i % 4, 1996))
        sim.run()
        assert hybrid.routed["query-centric"] == 2
        assert hybrid.routed["gqp"] == 3

    def test_in_flight_decays_between_waves(self, ssb):
        sim, hybrid = make_hybrid(ssb, threshold=2)
        results = {}

        def waves():
            from repro.sim.commands import SLEEP

            h1 = hybrid.submit(q32("CHINA", "FRANCE", 1993, 1996))
            yield from h1.wait()
            yield SLEEP(0.01)  # let the completion watcher run
            results["first"] = hybrid.in_flight  # back to 0 after completion
            h2 = hybrid.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
            yield from h2.wait()

        sim.spawn(waves(), "waves")
        sim.run()
        assert results["first"] == 0
        assert hybrid.routed == {"query-centric": 2, "gqp": 0}

    def test_results_exact_on_both_paths(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, hybrid = make_hybrid(ssb, threshold=1)
        h_qc = hybrid.submit(spec)  # in_flight 0 < 1: query-centric
        h_gqp = hybrid.submit(spec)  # in_flight 1 >= 1: GQP
        sim.run()
        assert hybrid.routed == {"query-centric": 1, "gqp": 1}
        assert norm(h_qc.results) == oracle
        assert norm(h_gqp.results) == oracle

    def test_exactly_at_threshold_routes_gqp(self, ssb):
        """The boundary is >=: the arrival that finds in_flight == threshold
        is the first to go to the GQP."""
        sim, hybrid = make_hybrid(ssb, threshold=3)
        for i in range(3):
            hybrid.submit(q32("CHINA", "FRANCE", 1992 + i, 1996))
        assert hybrid.in_flight == 3
        hybrid.submit(q32("JAPAN", "BRAZIL", 1992, 1995))
        sim.run()
        assert hybrid.routed == {"query-centric": 3, "gqp": 1}

    def test_threshold_zero_always_gqp(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, hybrid = make_hybrid(ssb, threshold=0)
        handles = [hybrid.submit(spec) for _ in range(3)]
        sim.run()
        assert hybrid.routed == {"query-centric": 0, "gqp": 3}
        for h in handles:
            assert norm(h.results) == oracle

    def test_engines_share_one_storage_manager(self, ssb):
        """Both engines must sit on the same StorageManager -- circular
        scans, buffer pool and caches are common, so a query routed either
        way reuses the other route's I/O work."""
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
        hybrid = HybridEngine(sim, storage, threshold=1)
        assert hybrid.query_centric.storage is storage
        assert hybrid.gqp.storage is storage
        assert hybrid.query_centric.storage.tables is hybrid.gqp.storage.tables
        # Exercise both routes against the shared manager.
        hybrid.submit(q32("CHINA", "FRANCE", 1993, 1996))
        hybrid.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        assert hybrid.routed == {"query-centric": 1, "gqp": 1}

    def test_default_threshold_is_saturation(self, ssb):
        from repro.engine.hybrid import saturation_threshold

        sim, hybrid = make_hybrid(ssb, threshold=None)
        assert hybrid.threshold == saturation_threshold(sim.machine) == sim.machine.cores // 2

    def test_plans_always_query_centric(self, ssb):
        from repro.data import generate_tpch
        from repro.query.tpch_queries import tpch_q1_plan

        ds = generate_tpch(0.5, seed=3)
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ds.tables, StorageConfig(resident="memory"))
        hybrid = HybridEngine(sim, storage, threshold=0)
        h = hybrid.submit_plan(tpch_q1_plan(ds.lineitem))
        sim.run()
        assert hybrid.routed["query-centric"] == 1
        assert h.results


class TestEnvelope:
    def test_hybrid_near_best_config_at_both_extremes(self, ssb):
        """The point of the policy: close to QPipe-SP at low concurrency
        and close to CJOIN-SP at high concurrency."""
        from repro.engine import CJOIN_SP, QPIPE_SP

        for n in (2, 64):
            wl = q32_random_workload(n, seed=9)
            hybrid = run_batch(ssb.tables, HYBRID, wl).mean_response
            qc = run_batch(ssb.tables, QPIPE_SP, wl).mean_response
            gqp = run_batch(ssb.tables, CJOIN_SP, wl).mean_response
            assert hybrid <= 1.5 * min(qc, gqp)

    def test_runner_reports_hybrid_name(self, ssb):
        r = run_batch(ssb.tables, HYBRID, q32_random_workload(2, seed=9))
        assert r.config_name == "Hybrid"
