"""Packets: one unit of work per operator per query.

A packet owns an output exchange.  A packet that attached as a *satellite*
owns none -- its consumers read the host's exchange instead (pull-based SP),
or receive copies pushed by the host (push-based SP; the copy mechanics live
inside :class:`~repro.engine.exchange.FifoExchange`)."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Optional

from repro.engine.wop import WindowOfOpportunity

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.plan import PlanNode, ScanNode
    from repro.query.star import Query

_packet_ids = itertools.count()


class Packet:
    """One operator instance dispatched to a stage."""

    __slots__ = (
        "packet_id",
        "node",
        "query",
        "stage_name",
        "wop",
        "exchange",
        "host",
        "satellites",
        "started_emitting",
        "finished",
    )

    def __init__(self, node: "PlanNode", query: "Query", stage_name: str, wop: WindowOfOpportunity):
        self.packet_id = next(_packet_ids)
        self.node = node
        self.query = query
        self.stage_name = stage_name
        self.wop = wop
        self.exchange: Any | None = None
        self.host: Optional["Packet"] = None
        self.satellites: list["Packet"] = []
        self.started_emitting = False
        self.finished = False

    # ------------------------------------------------------------------
    @property
    def signature(self) -> tuple:
        return self.node.signature

    @property
    def is_satellite(self) -> bool:
        return self.host is not None

    def can_attach(self) -> bool:
        """Is a newly arriving identical packet inside this host's WoP?"""
        if self.finished:
            return False
        if self.wop is WindowOfOpportunity.STEP:
            return not self.started_emitting
        if self.wop is WindowOfOpportunity.LINEAR:
            return True
        return False

    def effective_exchange(self) -> Any:
        """The exchange consumers should read: the host's when satellite."""
        packet = self
        while packet.host is not None:
            packet = packet.host
        if packet.exchange is None:
            raise RuntimeError(f"packet {packet.packet_id} has no exchange yet")
        return packet.exchange

    def connect(self, budget: int | None = None) -> Any:
        """Open a reader on this packet's (effective) output."""
        return self.effective_exchange().open_reader(budget)

    def attach_satellite(self, satellite: "Packet") -> None:
        satellite.host = self
        self.satellites.append(satellite)

    def mark_started(self) -> None:
        self.started_emitting = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "satellite" if self.is_satellite else "host"
        return f"<Packet #{self.packet_id} {self.stage_name} q{self.query.query_id} {role}>"
