#!/usr/bin/env python
"""Similarity sweep: subsumption-based query folding vs exact-match sharing.

The fold plane (``REPRO_FOLD``) pays off exactly where exact-signature
sharing misses: queries that *overlap* without being identical.  The
sweep serves the ``folding:<overlap>`` workload -- an ``overlap``
fraction of queries narrows one of four broad Q3.2 templates to a random
year sub-range (sub-ranges rarely coincide, so exact matching almost
never fires on them) -- with folding off and on, both modes running the
same 64 MB result cache, and checks:

* at 0% overlap folding is free: p95 within +/-3% of fold-off (admission
  probes the lattice and finds nothing; no residuals are built);
* at 50% overlap folding cuts p95 by >= 1.3x (the acceptance gate): the
  narrowings attach to in-flight broad hosts or replay subsuming cached
  results through a residual filter instead of recomputing;
* at 100% overlap the two modes converge again -- the highly recurrent
  stream repeats exact sub-ranges often enough that plain exact-match
  sharing (WoP + cache) already serves the fold-off baseline.  Folding's
  win lives in the partial-overlap middle, which is the paper's Figure
  14/15 similarity-knob story.

A second section re-runs the same workload's query specs directly on
QPipe-SP and CJOIN-SP engines, fold-off vs fold-on, and **asserts the
per-query simulated results bit-identical** (sha256 over row reprs) --
the golden-determinism contract extended to the fold plane.  A results
mismatch exits non-zero; all perf thresholds except the 50%-overlap gate
are warn-only.

Writes ``BENCH_folding.json`` at the repo root (collated into
``BENCH_trajectory.json`` by ``benchmarks/trajectory.py``).

Usage::

    python benchmarks/bench_folding.py          # default sweep (5 overlaps)
    python benchmarks/bench_folding.py --fast   # CI smoke (0%, 50%)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import format_table
from repro.data import generate_ssb
from repro.engine.config import CJOIN_SP, QPIPE_SP, fast_path
from repro.engine.qpipe import QPipeEngine
from repro.server import serve
from repro.server.service import folding_job_factory
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.engine import Simulator
from repro.sim.machine import PAPER_MACHINE
from repro.storage.manager import StorageConfig, StorageManager

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_folding.json"

FAST_OVERLAPS = (0.0, 0.5)
FULL_OVERLAPS = (0.0, 0.25, 0.5, 0.75, 1.0)
CACHE_MB = 64.0
SF = 0.5
DATA_SEED = 23
SERVE_SEED = 1
#: past the query-centric path's capacity, so queueing makes folded-away
#: work visible in the tail (an idle system hides the sharing win)
ARRIVAL_RATE = 16.0

ENGINES = {"QPipe-SP": QPIPE_SP, "CJOIN-SP": CJOIN_SP}


def _storage() -> StorageConfig:
    # Cache ON in *both* modes: the sweep isolates what subsumption adds
    # on top of exact-match sharing, not what a cache adds over nothing.
    return StorageConfig(
        resident="memory", result_cache_bytes=CACHE_MB * 1024 * 1024
    )


# ----------------------------------------------------------------------
# Section 1: the served similarity sweep.
# ----------------------------------------------------------------------
def sweep(full: bool = False):
    overlaps = FULL_OVERLAPS if full else FAST_OVERLAPS
    duration = 10.0 if full else 5.0
    tables = generate_ssb(SF, seed=DATA_SEED).tables
    cells = {}
    for overlap in overlaps:
        for fold in (False, True):
            with fast_path(
                batch_kernels=True, fuse_charges=True, query_folding=fold
            ):
                cells[(overlap, fold)] = serve(
                    tables,
                    policy="adaptive",
                    arrival="poisson",
                    rate=ARRIVAL_RATE,
                    duration=duration,
                    seed=SERVE_SEED,
                    workload=f"folding:{overlap}",
                    storage_config=_storage(),
                )
    return overlaps, cells


def p95(report) -> float:
    return report.metrics.latency_percentiles()["p95"]


def ratio(cells, overlap) -> float:
    """p95(fold-off) / p95(fold-on) at ``overlap`` (>1 means folding wins)."""
    on = p95(cells[(overlap, True)])
    return p95(cells[(overlap, False)]) / on if on > 0 else 1.0


def fold_counters(report) -> dict:
    """Every fold-plane counter the run bumped (attach/cache-hit/cjoin)."""
    return {
        k: v for k, v in sorted(report.metrics.counts.items()) if "fold" in k
    }


def render(overlaps, cells) -> str:
    rows = []
    for overlap in overlaps:
        off, on = cells[(overlap, False)], cells[(overlap, True)]
        counters = fold_counters(on)
        attaches = sum(
            v for k, v in counters.items()
            if k.startswith(("fold_attach:", "fold_cache_hit:"))
        )
        rows.append(
            [
                f"{overlap:.0%}",
                on.metrics.completed,
                f"{p95(off):.3f}",
                f"{p95(on):.3f}",
                f"{ratio(cells, overlap):.2f}x",
                attaches,
                on.metrics.cache_stats.get("fold_hits", 0),
                on.metrics.cache_stats.get("hits", 0),
            ]
        )
    return format_table(
        f"folding sweep: folding:<overlap>, {CACHE_MB:.0f} MB cache both modes",
        ["overlap", "done", "p95 off", "p95 on", "ratio", "folds",
         "cache-fold", "cache-exact"],
        rows,
        note="ratio = p95(fold-off)/p95(fold-on); folds = attach + cache-fold hits",
    )


def check(overlaps, cells) -> list[str]:
    """The 50%-overlap gate asserts; everything else warns."""
    warnings = []
    r0 = ratio(cells, 0.0)
    if not 0.97 <= r0 <= 1.03:
        warnings.append(
            f"folding not free at 0% overlap: p95 ratio {r0:.3f}x"
        )
    half = ratio(cells, 0.5)
    assert half >= 1.3, (
        f"only {half:.2f}x p95 improvement at 50% overlap (need >= 1.3x)"
    )
    # The fold-on run actually exercised the lattice end to end.
    counters = fold_counters(cells[(0.5, True)])
    assert counters, "no fold counters bumped at 50% overlap with folding on"
    off_counters = fold_counters(cells[(0.5, False)])
    assert not off_counters, (
        f"fold counters bumped with folding OFF: {off_counters}"
    )
    return warnings


# ----------------------------------------------------------------------
# Section 2: per-query result identity, fold-off vs fold-on.
# ----------------------------------------------------------------------
def _fingerprint(rows) -> str:
    h = hashlib.sha256()
    for row in rows:
        h.update(repr(row).encode())
        h.update(b"\n")
    return h.hexdigest()


def check_results_identical(n: int) -> dict:
    """Folding must not change a single simulated result row: run the
    same ``folding:0.6`` specs through both modes on one engine each and
    compare per-query sha256 fingerprints.  Divergence is fatal."""
    dataset = generate_ssb(SF, seed=DATA_SEED)
    make = folding_job_factory(SERVE_SEED, 0.6)
    specs = [make(k).spec for k in range(n)]
    section = {"queries": n, "engines": {}}
    for name, config in ENGINES.items():
        per_mode = {}
        for fold in (False, True):
            with fast_path(
                batch_kernels=True, fuse_charges=True, query_folding=fold
            ):
                sim = Simulator(PAPER_MACHINE)
                storage = StorageManager(
                    sim, DEFAULT_COST_MODEL, dataset.tables, _storage()
                )
                engine = QPipeEngine(sim, storage, config)
                handles = [engine.submit(spec) for spec in specs]
                sim.run()
                per_mode[fold] = [_fingerprint(h.results) for h in handles]
        for k, (a, b) in enumerate(zip(per_mode[False], per_mode[True])):
            if a != b:
                print(
                    f"FATAL: {name} query {k} results diverge under folding "
                    f"({a[:16]} != {b[:16]})",
                    file=sys.stderr,
                )
                raise SystemExit(2)
        section["engines"][name] = {
            "batch_fingerprint": _fingerprint(per_mode[False]),
            "identical": True,
        }
    return section


# ----------------------------------------------------------------------
# Artifact.
# ----------------------------------------------------------------------
def to_artifact(overlaps, cells, identity, warnings) -> dict:
    doc = {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "params": {
            "sf": SF,
            "data_seed": DATA_SEED,
            "serve_seed": SERVE_SEED,
            "arrival_rate": ARRIVAL_RATE,
            "cache_mb": CACHE_MB,
            "policy": "adaptive",
            "workload": "folding:<overlap>",
        },
        "sweep": {},
        "speedup_p95": {},
        "identity": identity,
        "warnings": warnings,
    }
    for overlap in overlaps:
        off, on = cells[(overlap, False)], cells[(overlap, True)]
        doc["sweep"][f"{overlap:.2f}"] = {
            "completed_off": off.metrics.completed,
            "completed_on": on.metrics.completed,
            "p95_off_s": round(p95(off), 4),
            "p95_on_s": round(p95(on), 4),
            "ratio": round(ratio(cells, overlap), 4),
            "fold_counters": fold_counters(on),
            "cache_fold_hits": on.metrics.cache_stats.get("fold_hits", 0),
            "cache_exact_hits": on.metrics.cache_stats.get("hits", 0),
        }
        doc["speedup_p95"][f"overlap_{overlap:.2f}"] = round(
            ratio(cells, overlap), 4
        )
    return doc


def bench_folding(once, save_report, full_mode):
    """pytest-benchmark entry point (see conftest.py)."""
    overlaps, cells = once(sweep, full=full_mode)
    save_report("folding", render(overlaps, cells))
    check(overlaps, cells)
    check_results_identical(8)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--fast", action="store_true",
                      help="CI smoke parameters (0%% and 50%% overlap)")
    mode.add_argument("--full", action="store_true",
                      help="paper-scale sweep (5 overlaps, longer serve)")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH,
                        help=f"artifact path (default {OUT_PATH.name} at repo root)")
    args = parser.parse_args(argv)

    overlaps, cells = sweep(full=args.full)
    print(render(overlaps, cells))
    warnings = check(overlaps, cells)
    for w in warnings:
        print(f"WARN: {w}", file=sys.stderr)
    identity = check_results_identical(16 if args.full else 8)
    for name, eng in identity["engines"].items():
        print(f"{name}: {identity['queries']} queries bit-identical "
              f"fold-off vs fold-on ({eng['batch_fingerprint'][:16]})")
    args.out.write_text(
        json.dumps(to_artifact(overlaps, cells, identity, warnings),
                   indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
