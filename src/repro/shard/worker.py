"""The shard worker: one process, one fact partition, one engine.

Entry point for :class:`~repro.parallel.workers.WorkerHandle`.  At spawn
the worker builds its shard view of the database -- dataset regenerated
from the spec (a copy-on-write hit under fork, thanks to the parent's
prewarm), fact table partitioned by the pure placement function -- sends a
``("ready", shard_id, fact_rows, shipping)`` handshake (``shipping`` is
the partition-build accounting the front end's scatter-cost model
charges, see :func:`repro.shard.partition.partition_shipping`), then serves
:class:`~repro.shard.spec.ShardRequest` messages FIFO until the pipe
closes.

Per request it runs the query's **join-only plan** on a *fresh* simulator
and engine (service time depends only on the spec and the shard's data,
never on what ran before -- the determinism the virtual timeline needs)
and reduces the joined batches to an exact partial aggregate at the shard
boundary (:mod:`repro.query.merge`).  A worker whose fact partition is
empty skips the engine entirely (CJOIN has no work to pipeline over zero
fact pages) and answers with an empty state at zero service time.

Failures stay structured: an exception while planning or executing is
caught and shipped back in :attr:`ShardResponse.error`; only injected
test faults (and real crashes) take the process down.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from typing import Any

from repro.engine.config import fast_path, gqp_plane
from repro.engine.qpipe import QPipeEngine
from repro.parallel.cells import current_fast_flags, current_gqp_flags
from repro.query.merge import PartialAggregator
from repro.query.star import StarQuerySpec
from repro.shard.partition import partition_shipping, shard_tables
from repro.shard.spec import ShardConfig, ShardRequest, ShardResponse
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.engine import Simulator
from repro.storage.arrangements import ARRANGEMENTS
from repro.storage.manager import StorageManager
from repro.storage.table import Table

__all__ = ["execute_shard_query", "shard_worker_main"]


def execute_shard_query(
    tables: dict[str, Table], spec: StarQuerySpec, config: ShardConfig
) -> tuple[dict, float]:
    """Run ``spec``'s joins over this shard and partially aggregate.

    Returns ``(partial_state, svc_seconds)`` with ``svc_seconds`` the
    simulated response time of the join-only plan on this shard's engine.
    """
    fact = tables[config.fact_table]
    engine_config = config.engine_config
    plan = spec.to_join_only_plan(tables, use_cjoin=engine_config.use_cjoin)
    agg = PartialAggregator(spec.group_by, spec.aggregates, plan.schema)
    if fact.num_rows == 0:
        # Nothing to join: an empty partition is a legal shard (CJOIN has
        # no fact pages to pipeline over and would not start cleanly).
        return agg.state(), 0.0
    sim = Simulator(config.machine)
    storage = StorageManager(sim, DEFAULT_COST_MODEL, tables, config.storage)
    engine = QPipeEngine(sim, storage, engine_config)
    handle = engine.submit_plan(plan, label=spec.label, spec=spec, collect_batches=True)
    sim.run()
    for rows, weight in handle.batches:
        agg.consume(rows, weight)
    return agg.state(), handle.response_time


def shard_worker_main(conn: Any, shard_id: int, config: ShardConfig) -> None:
    """Process entry point: build the shard, handshake, serve requests."""
    flags = config.fast_flags
    ctx = fast_path(*flags) if flags != current_fast_flags() else nullcontext()
    gflags = config.gqp_flags
    gctx = gqp_plane(*gflags) if gflags != current_gqp_flags() else nullcontext()
    with ctx, gctx:
        # Build inside the flag context: the packed/columnar layout is
        # baked into tables at generation time, so a worker replaying a
        # parent whose mode differs from this process's env defaults must
        # regenerate under the parent's flags (the dataset memo is keyed
        # by the effective layout, so the COW prewarm hit survives the
        # common flags-match case).
        dataset = config.dataset.generate()
        tables = shard_tables(
            dataset.tables,
            config.fact_table,
            shard_id,
            config.n_shards,
            config.partition,
            config.partition_salt,
            columnar=config.fast_flags[2],
        )
        fact = tables[config.fact_table]
        fact_rows = fact.num_rows
        conn.send(("ready", shard_id, fact_rows, partition_shipping(fact)))
        while True:
            try:
                req: ShardRequest | None = conn.recv()
            except (EOFError, KeyboardInterrupt):
                return
            if req is None:  # orderly shutdown
                return
            if req.fault == "crash":
                os._exit(13)
            if req.fault == "hang":
                # Stuck worker: never answer.  The front end's wall-clock
                # timeout kills this process; the sleep is just a backstop.
                time.sleep(3600)
                continue
            t0 = time.perf_counter()
            hits0 = ARRANGEMENTS.hits
            try:
                state, svc = execute_shard_query(tables, req.spec, config)
            except Exception as exc:
                conn.send(
                    ShardResponse(
                        seq=req.seq,
                        shard_id=shard_id,
                        state={},
                        svc_seconds=0.0,
                        wall_s=time.perf_counter() - t0,
                        fact_rows=fact_rows,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            conn.send(
                ShardResponse(
                    seq=req.seq,
                    shard_id=shard_id,
                    state=state,
                    svc_seconds=svc,
                    wall_s=time.perf_counter() - t0,
                    fact_rows=fact_rows,
                    arrange_hits=ARRANGEMENTS.hits - hits0,
                )
            )
