"""Picklable experiment cells.

Every sweep in :mod:`repro.bench` is a grid of *cells*: one closed,
deterministic simulation per (dataset, workload, engine configuration,
storage, machine) tuple.  A :class:`CellSpec` captures that tuple as plain
data -- no table rows, no query plans, no RNG objects -- so a cell can be
shipped to a worker process and executed there bit-identically.

Determinism by construction: a cell's inputs are *derived from the spec*,
never from shared mutable state.

* The dataset is regenerated in the worker from ``(kind, sf, seed)``
  (generation is deterministic and ``lru_cache``-memoized per process).
* The workload is regenerated from its :class:`WorkloadSpec`; every
  generator in :mod:`repro.bench.workload` seeds a fresh
  ``random.Random`` from ``(seed, kind, params...)`` via
  :func:`repro.data.rng.make_rng`, so no draw depends on how many cells
  ran before this one, in which order, or in which process.
* The host fast-path flags are captured into the spec at *enumeration*
  time (``fast_flags``), so a ``with fast_path(...)`` block in the parent
  applies to workers too -- they don't inherit context managers.

The result is the same for any worker count and any execution order,
which is what lets :mod:`repro.parallel.fabric` merge by key.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.bench.runner import (
    HYBRID,
    POSTGRES,
    DEFAULT_SUBMIT_STAGGER,
    RunResult,
    ThroughputResult,
    run_batch,
    run_closed_loop,
)
from repro.bench.workload import (
    QueryJob,
    gqp_skewed_workload,
    gqp_uniform_workload,
    mix_spec_factory,
    q32_limited_plans_workload,
    q32_random_workload,
    q32_selectivity_workload,
    ssb_mix_workload,
    tpch_q1_workload,
)
from repro.engine.config import (
    EngineConfig,
    arrangements_default,
    batch_kernels_default,
    columnar_pages_default,
    fast_path,
    fuse_charges_default,
    gqp_adaptive_ordering_default,
    gqp_filter_kernels_default,
    gqp_plane,
    packed_storage_default,
    query_folding_default,
)
from repro.sim.machine import PAPER_MACHINE, MachineSpec
from repro.storage.manager import StorageConfig

__all__ = [
    "CellResult",
    "CellSpec",
    "DatasetSpec",
    "WorkloadSpec",
    "current_fast_flags",
    "current_gqp_flags",
    "execute_cell",
]


def current_fast_flags() -> tuple[bool, bool, bool, bool, bool, bool]:
    """The parent's (batch_kernels, fuse_charges, columnar_pages,
    packed_storage, arrangements, query_folding) defaults, captured into
    each spec so workers replay the parent's execution mode -- including a
    ``REPRO_COLUMNAR=0`` row-mode, ``REPRO_PACKED=0`` boxed-layout,
    ``REPRO_ARRANGE=0`` private-builds, or ``REPRO_FOLD=0`` exact-match
    parent.  Unlike the first five, ``query_folding`` changes simulated
    timing, so shipping it with the cell is also what keeps a folding
    sweep byte-identical across any worker count."""
    return (
        batch_kernels_default(),
        fuse_charges_default(),
        columnar_pages_default(),
        packed_storage_default(),
        arrangements_default(),
        query_folding_default(),
    )


def current_gqp_flags() -> tuple[bool, bool]:
    """The parent's (adaptive_ordering, filter_kernels) adaptive-GQP
    defaults.  Captured into each spec like ``fast_flags`` -- but these
    *change simulated results*, so shipping them with the cell is what
    keeps a ``--gqp-ordering adaptive`` sweep byte-identical across any
    worker count."""
    return (gqp_adaptive_ordering_default(), gqp_filter_kernels_default())


@dataclass(frozen=True)
class DatasetSpec:
    """Which dataset a cell runs against (regenerated per process)."""

    kind: str  # "ssb" | "tpch"
    sf: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.kind not in ("ssb", "tpch"):
            raise ValueError(f"unknown dataset kind {self.kind!r}")

    def generate(self):
        if self.kind == "ssb":
            from repro.data.ssb import generate_ssb

            return generate_ssb(self.sf, self.seed)
        from repro.data.tpch import generate_tpch

        return generate_tpch(self.sf, self.seed)


#: Workload kinds a :class:`WorkloadSpec` can regenerate.  Each maps to a
#: deterministic generator; the spec's fields are the generator's arguments.
WORKLOAD_KINDS = (
    "q32-random",
    "q32-plans",
    "q32-selectivity",
    "q32-fixed",
    "ssb-mix",
    "tpch-q1",
    "mix-factory",
    "gqp-skew",
    "gqp-uniform",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload as data: regenerated inside the cell from its own seed
    stream (``make_rng(seed, kind, params...)``), never drawn from a
    generator shared across cells."""

    kind: str
    n: int = 0
    seed: int = 1
    n_plans: int = 0
    selectivity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}")

    def build(self, dataset) -> list[QueryJob]:
        if self.kind == "q32-random":
            return q32_random_workload(self.n, self.seed)
        if self.kind == "q32-plans":
            return q32_limited_plans_workload(self.n, self.n_plans, self.seed)
        if self.kind == "q32-selectivity":
            return q32_selectivity_workload(self.n, self.selectivity, self.seed)
        if self.kind == "q32-fixed":
            from repro.query.ssb_queries import q32

            spec = q32("CHINA", "FRANCE", 1993, 1996)
            return [QueryJob(spec=spec) for _ in range(self.n)]
        if self.kind == "ssb-mix":
            return ssb_mix_workload(self.n, self.seed)
        if self.kind == "tpch-q1":
            return tpch_q1_workload(self.n, dataset)
        if self.kind == "gqp-skew":
            return gqp_skewed_workload(self.n, self.seed)
        if self.kind == "gqp-uniform":
            return gqp_uniform_workload(self.n, self.seed)
        raise ValueError(f"workload kind {self.kind!r} has no batch form")


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell, fully described by picklable data.

    ``config`` is an :class:`~repro.engine.config.EngineConfig` (a frozen
    dataclass of plain fields) or one of the ``POSTGRES`` / ``HYBRID``
    string sentinels -- all picklable.  ``mode`` selects the runner:
    ``"batch"`` (:func:`repro.bench.runner.run_batch`) or ``"closed"``
    (:func:`repro.bench.runner.run_closed_loop` with the Figure 16 mix
    factory, ``n_clients`` x ``duration``)."""

    key: str
    config: Any
    dataset: DatasetSpec
    workload: WorkloadSpec
    storage: StorageConfig = StorageConfig()
    machine: MachineSpec = PAPER_MACHINE
    submit_stagger: float = DEFAULT_SUBMIT_STAGGER
    mode: str = "batch"
    n_clients: int = 0
    duration: float = 0.0
    #: (batch_kernels, fuse_charges, columnar_pages, packed_storage,
    #: arrangements) captured in the parent at enumeration time; workers
    #: re-apply them around the run (dataset generation included -- table
    #: layout is decided at build time).
    fast_flags: tuple[bool, ...] = field(default_factory=current_fast_flags)
    #: (adaptive_ordering, filter_kernels) likewise -- engine configs with
    #: the GQP knobs at ``None`` resolve against these inside the worker.
    gqp_flags: tuple[bool, bool] = field(default_factory=current_gqp_flags)

    def __post_init__(self) -> None:
        if self.mode not in ("batch", "closed"):
            raise ValueError(f"unknown cell mode {self.mode!r}")
        if self.mode == "closed" and (self.n_clients < 1 or self.duration <= 0):
            raise ValueError("closed-loop cells need n_clients >= 1 and duration > 0")
        if not isinstance(self.config, EngineConfig) and self.config not in (POSTGRES, HYBRID):
            raise ValueError(f"unpicklable/unknown engine selector {self.config!r}")


@dataclass
class CellResult:
    """One executed cell: the measurement plus host-side attribution."""

    key: str
    result: RunResult | ThroughputResult
    wall_s: float
    worker: int  # pid of the process that ran the cell
    retried: bool = False

    def attribution(self) -> dict[str, Any]:
        return {
            "wall_s": round(self.wall_s, 4),
            "worker": self.worker,
            "retried": self.retried,
        }


def execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell to completion (the unit of work the fabric schedules).

    This is a *top-level* function (picklable by reference) and the single
    code path for serial and parallel execution: ``jobs=1`` calls it in
    the parent, ``jobs=N`` in workers -- same function, same results."""
    t0 = time.perf_counter()
    flags = spec.fast_flags
    ctx = fast_path(*flags) if flags != current_fast_flags() else nullcontext()
    gflags = spec.gqp_flags
    gctx = gqp_plane(*gflags) if gflags != current_gqp_flags() else nullcontext()
    with ctx, gctx:
        # Generate inside the flag context: the packed/columnar layout is
        # baked into tables at build time, and the dataset memo is keyed
        # by the effective layout flags (see repro.data.ssb).
        dataset = spec.dataset.generate()
        if spec.mode == "batch":
            result: RunResult | ThroughputResult = run_batch(
                dataset.tables,
                spec.config,
                spec.workload.build(dataset),
                spec.storage,
                machine=spec.machine,
                submit_stagger=spec.submit_stagger,
            )
        else:
            if spec.workload.kind != "mix-factory":
                raise ValueError("closed-loop cells use the 'mix-factory' workload")
            result = run_closed_loop(
                dataset.tables,
                spec.config,
                mix_spec_factory(spec.workload.seed),
                spec.n_clients,
                spec.duration,
                spec.storage,
                machine=spec.machine,
            )
    return CellResult(
        key=spec.key,
        result=result,
        wall_s=time.perf_counter() - t0,
        worker=os.getpid(),
    )
