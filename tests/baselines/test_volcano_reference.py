"""Tests for the reference evaluator and the Volcano baseline."""

import pytest

from repro.baselines import VolcanoEngine, evaluate_plan
from repro.baselines.volcano import mature_cost_model
from repro.data import generate_ssb, generate_tpch
from repro.query.expr import Cmp, Col
from repro.query.plan import AggregateNode, AggSpec, HashJoinNode, ScanNode, SelectNode, SortNode
from repro.query.ssb_queries import q21, q32
from repro.query.tpch_queries import tpch_q1_plan
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=55)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


class TestReferenceEvaluator:
    def test_scan_and_select(self, ssb):
        plan = SelectNode(ScanNode(ssb.customer), Cmp("=", "c_nation", "CHINA"))
        rows = evaluate_plan(plan)
        inat = ssb.customer.schema.index("c_nation")
        assert rows
        assert all(r[inat] == "CHINA" for r in rows)

    def test_join_against_manual(self, ssb):
        plan = HashJoinNode(
            ScanNode(ssb.lineorder), ScanNode(ssb.supplier), "lo_suppkey", "s_suppkey"
        )
        rows = evaluate_plan(plan)
        # Foreign keys all resolve: one match per fact row.
        assert len(rows) == len(ssb.lineorder)

    def test_count_and_avg_weighting(self, ssb):
        plan = AggregateNode(
            ScanNode(ssb.supplier),
            (),
            (AggSpec("count", None, "n"), AggSpec("avg", Col("s_suppkey"), "avg_key")),
        )
        ((count, avg_key),) = evaluate_plan(plan)
        assert count == pytest.approx(ssb.supplier.real_rows)
        keys = [r[0] for r in ssb.supplier.iter_rows()]
        assert avg_key == pytest.approx(sum(keys) / len(keys))

    def test_min_max(self, ssb):
        plan = AggregateNode(
            ScanNode(ssb.supplier),
            (),
            (AggSpec("min", Col("s_suppkey"), "lo"), AggSpec("max", Col("s_suppkey"), "hi")),
        )
        ((lo, hi),) = evaluate_plan(plan)
        assert lo == 1
        assert hi == len(ssb.supplier)

    def test_sort_directions(self, ssb):
        plan = SortNode(
            ScanNode(ssb.supplier), (("s_nation", True), ("s_suppkey", False))
        )
        rows = evaluate_plan(plan)
        sch = ssb.supplier.schema
        inat, ikey = sch.index("s_nation"), sch.index("s_suppkey")
        keys = [(r[inat], -r[ikey]) for r in rows]
        assert keys == sorted(keys)

    def test_cjoin_requires_dim_tables(self, ssb):
        from repro.query.plan import CJoinNode, DimJoinSpec

        node = CJoinNode(
            ssb.lineorder,
            (DimJoinSpec("date", "lo_orderdate", "d_datekey"),),
            fact_payload=("lo_revenue",),
        )
        with pytest.raises(ValueError, match="dim_tables"):
            evaluate_plan(node)


class TestVolcano:
    def test_matches_oracle_on_templates(self, ssb):
        for spec in (q32("CHINA", "FRANCE", 1993, 1996), q21("MFGR#12", "AMERICA")):
            sim = Simulator(MachineSpec())
            storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig())
            pg = VolcanoEngine(sim, storage)
            h = pg.submit(spec)
            sim.run()
            assert norm(h.results) == norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))

    def test_tpch_q1(self):
        ds = generate_tpch(0.5, seed=3)
        plan = tpch_q1_plan(ds.lineitem)
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ds.tables, StorageConfig())
        pg = VolcanoEngine(sim, storage)
        h = pg.submit_plan(plan)
        sim.run()
        assert norm(h.results) == norm(evaluate_plan(plan))

    def test_mature_cost_model_is_cheaper(self):
        base = CostModel()
        mature = mature_cost_model(base)
        assert mature.scan_tuple < base.scan_tuple
        assert mature.probe_visit < base.probe_visit
        # Non-CPU knobs untouched.
        assert mature.admission_pause == base.admission_pause

    def test_faster_than_qpipe_at_one_query(self, ssb):
        """The paper: 'as Postgres is a more mature system ... it attains a
        better performance for low concurrency'."""
        from repro.engine import QPIPE_SP, QPipeEngine

        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim1 = Simulator(MachineSpec())
        st1 = StorageManager(sim1, DEFAULT_COST_MODEL, ssb.tables, StorageConfig())
        pg = VolcanoEngine(sim1, st1)
        h1 = pg.submit(spec)
        sim1.run()

        sim2 = Simulator(MachineSpec())
        st2 = StorageManager(sim2, DEFAULT_COST_MODEL, ssb.tables, StorageConfig())
        qp = QPipeEngine(sim2, st2, QPIPE_SP)
        h2 = qp.submit(spec)
        sim2.run()
        assert h1.response_time < h2.response_time

    def test_no_sharing_ever(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig())
        pg = VolcanoEngine(sim, storage)
        for _ in range(4):
            pg.submit(spec)
        sim.run()
        assert not sim.metrics.sharing_events

    def test_rejects_gqp_plans(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        plan = spec.to_gqp_plan(ssb.tables)
        sim = Simulator(MachineSpec())
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig())
        pg = VolcanoEngine(sim, storage)
        pg.submit_plan(plan)
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            sim.run()
