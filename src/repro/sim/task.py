"""Simulated threads.

A :class:`SimThread` wraps a Python generator and tracks its lifecycle.  The
generator represents one OS thread of the simulated server (a QPipe stage
worker, the CJOIN preprocessor, a Volcano backend process, ...).  Threads are
created through :meth:`repro.sim.engine.Simulator.spawn`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterator


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    NEW = "new"
    READY = "ready"  # resumption scheduled on the event heap
    ON_CPU = "on_cpu"  # inside the GPS core pool
    ON_IO = "on_io"  # inside a disk device pool
    SLEEPING = "sleeping"
    BLOCKED = "blocked"  # parked via BLOCK, waiting for unblock()
    DONE = "done"
    FAILED = "failed"


class SimThread:
    """One simulated thread of execution.

    Parameters
    ----------
    gen:
        The generator driving this thread.  It yields commands from
        :mod:`repro.sim.commands` and may ``return`` a final value.
    name:
        Debug name, shown in deadlock reports.
    query_id:
        Optional query attribution for per-query metrics.
    """

    __slots__ = (
        "gen",
        "name",
        "query_id",
        "state",
        "result",
        "error",
        "_joiners",
        "start_time",
        "finish_time",
        "_wake_token",
        "_waker",
    )

    def __init__(self, gen: Generator[Any, Any, Any], name: str, query_id: int | None = None):
        self.gen = gen
        self.name = name
        self.query_id = query_id
        self.state = ThreadState.NEW
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list["SimThread"] = []
        self.start_time: float | None = None
        self.finish_time: float | None = None
        # Monotonic token used to invalidate stale unblock() calls.
        self._wake_token = 0
        # Completion callback cached by the simulator's fast path (the
        # slow path allocates a fresh, behaviorally identical closure per
        # dispatch, as the seed implementation did).
        self._waker: Callable[[], None] | None = None

    @property
    def alive(self) -> bool:
        """True while the thread has not finished (successfully or not)."""
        return self.state not in (ThreadState.DONE, ThreadState.FAILED)

    def join(self) -> Iterator[Any]:
        """Generator primitive: block the *calling* thread until this one
        finishes.  Usage: ``result = yield from other.join()``."""
        from repro.sim.commands import BLOCK

        if self.alive:
            # The engine fills in the current thread when it sees a join
            # registration; we capture it lazily via the joiners list.
            from repro.sim.engine import Simulator

            current = Simulator.current_thread()
            self._joiners.append(current)
            yield BLOCK
        if self.error is not None:
            raise self.error
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimThread {self.name!r} {self.state.value}>"
