"""Tests for the best-effort experiment chart helper."""

from repro.bench.charts import chart_for
from repro.bench.experiments import ExperimentResult


class TestChartFor:
    def test_charts_rt_against_concurrency(self):
        r = ExperimentResult(
            "figX", [], {"concurrency": [1, 2, 4], "rt": {"A": [1.0, 2.0, 3.0]}}
        )
        chart = chart_for(r)
        assert chart is not None
        assert "figX" in chart
        assert "A=A" in chart

    def test_prefers_known_x_keys(self):
        r = ExperimentResult(
            "figY",
            [],
            {"selectivities": [0.1, 0.3], "rt": {"A": [1.0, 2.0]}},
        )
        chart = chart_for(r)
        assert "0.1" in chart

    def test_skips_length_mismatched_series(self):
        r = ExperimentResult(
            "figZ",
            [],
            {"concurrency": [1, 2], "rt": {"ok": [1.0, 2.0], "bad": [1.0]}},
        )
        chart = chart_for(r)
        assert "ok" in chart
        assert "bad" not in chart

    def test_none_when_rt_not_a_dict(self):
        r = ExperimentResult("figW", [], {"rt": [1.0, 2.0]})
        assert chart_for(r) is None

    def test_none_when_no_data(self):
        assert chart_for(ExperimentResult("empty", [], {})) is None
        assert chart_for(object()) is None

    def test_falls_back_to_index_axis(self):
        r = ExperimentResult("figV", [], {"rt": {"A": [1.0, 2.0, 3.0]}})
        chart = chart_for(r)
        assert chart is not None  # x = 0..2
