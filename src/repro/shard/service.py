"""The scatter/gather front end: admission, dispatch, merge, report.

:class:`ShardService` serves an open-loop query stream against N shard
worker processes.  The control flow reuses the single-process service
tier's admission semantics unchanged -- bounded queue (drops at the door),
per-query queueing deadlines (late work is shed, not run), an in-flight
cap (backpressure) -- re-expressed on a **virtual timeline**:

* Execution is real: each admitted query's picklable spec is scattered to
  every worker over its pipe, the workers run their join-only plans in
  parallel (real processes, real cores), and the gather collects one
  partial aggregate per shard.
* Time is simulated, like every other measurement in this repository.
  Each worker reports the *simulated* service time of its shard's plan;
  the front end composes them FIFO per shard through
  :class:`~repro.server.router.ShardBacklog` --
  ``start = max(dispatch + scatter_cost, shard_horizon)`` -- and the query
  completes at ``max(shard_ends) + n_shards * gather_cost``.  Arrivals,
  queue waits, deadlines and latency percentiles all live on this
  timeline, so a run is deterministic in its seed regardless of host
  cores, wall-clock jitter, or gather arrival order.

Determinism contract (asserted by tests and the CI smoke diff): merged
rows and their fingerprints are **byte-identical for any shard count and
either partition mode** -- partial aggregates use exact arithmetic, the
merge is associative, and finalization orders rows canonically
(:mod:`repro.query.merge`).

Failure semantics (exercised in ``tests/shard/test_failures.py``):

* **worker crash** mid-query: respawn (fresh process, fresh pipe), resend
  the request, retry ONCE; a second failure becomes a structured failure
  record -- the query is counted ``failed``, the service keeps going.
* **stuck shard**: after ``shard_timeout_s`` wall-clock seconds the worker
  is killed and respawned; the request is NOT retried (it may be what
  wedged the worker) and the query fails structurally.  The gather never
  hangs and later queries still complete.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.bench.workload import QueryJob
from repro.parallel.workers import WorkerCrashed, WorkerHandle, WorkerUnresponsive
from repro.query.merge import merge_states, finalize_rows
from repro.query.star import StarQuerySpec
from repro.server.admission import QueuedQuery
from repro.server.arrivals import ArrivalProcess, make_arrivals
from repro.server.config import ServiceConfig
from repro.server.router import ShardBacklog
from repro.server.service import job_factory
from repro.shard.metrics import ShardServiceMetrics
from repro.shard.spec import ShardConfig, ShardRequest, ShardResponse
from repro.shard.worker import shard_worker_main
from repro.sim.costmodel import DEFAULT_COST_MODEL

__all__ = ["MergedResult", "ShardReport", "ShardService", "serve_sharded"]

#: Wall-clock budget for a worker's spawn-time handshake (dataset
#: generation included on a cold, non-fork start).
SPAWN_TIMEOUT_S = 120.0


def fingerprint_rows(rows: list[tuple]) -> str:
    """sha256 over the canonical repr of merged result rows.  ``repr`` of
    a float is its shortest round-trip form, so equal values fingerprint
    equally across processes and shard counts."""
    h = hashlib.sha256()
    for r in rows:
        h.update(repr(r).encode())
        h.update(b"\n")
    return h.hexdigest()


@dataclass(frozen=True)
class MergedResult:
    """One gathered query: canonical rows plus their fingerprint."""

    seq: int
    label: str
    rows: list[tuple]
    fingerprint: str


@dataclass
class _ShardOutcome:
    """What one shard contributed to one gathered query."""

    ok: bool
    #: virtual seconds this attempt occupies on the shard's timeline
    virtual_cost: float
    response: ShardResponse | None = None
    kind: str | None = None  # "crash" | "timeout" | "error" when not ok
    detail: str = ""
    retried: bool = False


class ShardService:
    """N shard workers behind one scatter/gather front end."""

    def __init__(
        self,
        config: ShardConfig,
        service_config: ServiceConfig = ServiceConfig(),
        spawn_timeout_s: float = SPAWN_TIMEOUT_S,
    ):
        self.config = config
        self.service_config = service_config
        self.spawn_timeout_s = spawn_timeout_s
        self.metrics = ShardServiceMetrics(n_shards=config.n_shards)
        self.backlog = ShardBacklog(config.n_shards)
        self.results: list[MergedResult] = []
        self.now = 0.0
        # Fork-COW prewarm (same trick as the sweep fabric): generate the
        # dataset in the parent before spawning so every worker inherits
        # the memoized tables copy-on-write instead of regenerating them.
        # With the columnar plane on, also materialize the fact table's
        # column vectors: the workers' zero-copy partition slices/gathers
        # (repro.shard.partition) then read shared pages instead of each
        # re-deriving columns from row tuples.
        ds = config.dataset.generate()
        if config.fast_flags[2]:
            for table in ds.tables.values():
                table.warm_columns()
        # Shared-arrangement prewarm (same fork-COW trick): build each
        # dimension's join arrangement on its key (first schema column --
        # the generators' PK-first convention) BEFORE spawning, so every
        # worker inherits the indexed dictionaries copy-on-write and its
        # first query's acquire() is already a hit.  The build cost is
        # charged ONCE per shard on the virtual timeline below (mirroring
        # the scatter-cost prewarm); reusing queries pay only their probe
        # cost, which their simulated service times already contain.
        arrange_cycles = 0.0
        if len(config.fast_flags) > 4 and config.fast_flags[4]:
            from repro.storage.arrangements import ARRANGEMENTS

            for name in sorted(ds.tables):
                if name == config.fact_table:
                    continue
                table = ds.tables[name]
                ARRANGEMENTS.release(
                    ARRANGEMENTS.acquire(table, table.schema.columns[0].name)
                )
                arrange_cycles += DEFAULT_COST_MODEL.arrange_cycles(table.real_rows)
        self.workers = [
            WorkerHandle(shard_worker_main, args=(i, config), name=f"shard-{i}")
            for i in range(config.n_shards)
        ]
        started = 0
        try:
            for h in self.workers:
                h.start()
                started += 1
            shippings = [self._await_ready(h) for h in self.workers]
        except BaseException:
            for h in self.workers[:started]:
                h.kill()
            raise
        # Scatter-cost model: each worker reported what building its fact
        # partition actually shipped (packed buffers make the byte counts
        # real -- zero-copy range views ship nothing, hash gathers ship
        # full buffers).  Charge per-page + per-byte cycles onto each
        # shard's virtual timeline at t=0, so the first queries queue
        # behind the scatter; fingerprints are timing-independent, only
        # latency accounting moves.
        hz = config.machine.hz
        arrange_s = arrange_cycles / hz
        self.metrics.prewarm_arrange_s = arrange_s
        for i, ship in enumerate(shippings):
            prewarm_s = (
                DEFAULT_COST_MODEL.scatter_cycles(ship["pages"], ship["shipped_bytes"]) / hz
            )
            # Advance the horizon directly: the prewarm is not a query
            # service sample, so it must not seed the EWMA predictor.
            # Arrangement builds gate every shard equally (one parent-side
            # build, inherited by all workers before any query runs).
            self.backlog.horizon[i] = prewarm_s + arrange_s
            self.metrics.record_partition_shipping(i, ship, prewarm_s)

    # -- lifecycle -------------------------------------------------------
    def _await_ready(self, handle: WorkerHandle) -> dict:
        """Wait for one worker's spawn handshake; return its partition-
        shipping accounting (rows / pages / shipped bytes)."""
        msg = handle.recv(timeout=self.spawn_timeout_s)
        if not (isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "ready"):
            raise RuntimeError(f"{handle.name}: bad handshake {msg!r}")
        return msg[3]

    def _respawn(self, handle: WorkerHandle) -> None:
        handle.respawn()
        self._await_ready(handle)
        self.metrics.shard_respawns += 1

    def close(self) -> None:
        """Shut the workers down (orderly when possible, killed always)."""
        for h in self.workers:
            try:
                h.send(None)
            except Exception:
                pass
            h.kill()

    def __enter__(self) -> "ShardService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the serving loop --------------------------------------------------
    def run(
        self,
        jobs: Callable[[int], QueryJob],
        arrivals: ArrivalProcess,
        duration: float | None,
    ) -> float:
        """Serve ``jobs`` under ``arrivals`` for ``duration`` virtual
        seconds (``None``: until the arrival process is exhausted -- only
        sensible for finite processes like traces), drain, and return the
        final virtual time.  Same contract as ``QueryService.run``."""
        cfg = self.service_config
        queue: deque[QueuedQuery] = deque()
        #: dispatched queries in completion order -- per-shard FIFO makes
        #: gather times monotone in dispatch order, so a deque suffices
        in_flight: deque[tuple[float, QueuedQuery, bool]] = deque()
        arr_iter = self._arrival_times(arrivals, duration)
        next_arrival = next(arr_iter, None)
        seq = 0
        self.now = 0.0
        while next_arrival is not None or queue or in_flight:
            next_completion = in_flight[0][0] if in_flight else math.inf
            if next_arrival is not None and next_arrival <= next_completion:
                self.now = next_arrival
                self.metrics.record_arrival()
                if len(queue) >= cfg.queue_capacity:
                    self.metrics.record_drop()
                else:
                    deadline = (
                        self.now + cfg.queue_timeout
                        if cfg.queue_timeout is not None
                        else None
                    )
                    queue.append(QueuedQuery(seq, jobs(seq), self.now, deadline))
                    self.metrics.record_admit()
                seq += 1
                next_arrival = next(arr_iter, None)
            else:
                g, item, ok = in_flight.popleft()
                self.now = g
                if ok:
                    self.metrics.record_completion(g - item.arrival_time)
            while queue and (
                cfg.max_in_flight is None or len(in_flight) < cfg.max_in_flight
            ):
                item = queue.popleft()
                if item.expired(self.now):
                    self.metrics.record_timeout(self.now - item.arrival_time)
                    continue
                in_flight.append(self._dispatch(item))
        return self.now

    @staticmethod
    def _arrival_times(arrivals: ArrivalProcess, duration: float | None) -> Iterator[float]:
        t = 0.0
        for gap in arrivals.gaps():
            t += gap
            if duration is not None and t >= duration:
                return
            yield t

    # -- dispatch: scatter, gather, merge, account --------------------------
    def _dispatch(self, item: QueuedQuery) -> tuple[float, QueuedQuery, bool]:
        spec = item.job.spec
        if spec is None:
            raise ValueError("the shard tier serves star-query specs only")
        cfg = self.config
        m = self.metrics
        outcomes = self._scatter_gather(item.seq, spec)
        ends = []
        for i, o in enumerate(outcomes):
            _, end = self.backlog.dispatch(i, self.now + cfg.scatter_cost_s, o.virtual_cost)
            ends.append(end)
            if o.ok:
                m.record_shard_service(i, o.response.svc_seconds)
                m.record_arrange_hits(i, o.response.arrange_hits)
        m.record_straggler(max(range(len(ends)), key=ends.__getitem__))
        g = max(ends) + cfg.gather_cost_s * cfg.n_shards
        m.record_overhead(cfg.scatter_cost_s * cfg.n_shards, cfg.gather_cost_s * cfg.n_shards)
        m.record_pressure(self.backlog.pressure(self.now))
        m.record_dispatch(self.now - item.arrival_time, route=cfg.engine)
        failed = [(i, o) for i, o in enumerate(outcomes) if not o.ok]
        if failed:
            shard, o = failed[0]
            m.record_failure(
                {
                    "seq": item.seq,
                    "shard": shard,
                    "kind": o.kind,
                    "detail": o.detail,
                    "arrival_time": item.arrival_time,
                    "virtual_completion": g,
                    "deadline": item.deadline,
                    "missed_deadline": item.deadline is not None and g > item.deadline,
                }
            )
            return (g, item, False)
        if any(o.retried for o in outcomes):
            m.shard_retries += 1
        # Merge in shard order (the operation is associative and
        # commutative -- exact arithmetic -- but a fixed order keeps the
        # execution trace itself reproducible).
        merged = merge_states(spec.aggregates, [o.response.state for o in outcomes])
        rows = finalize_rows(spec.group_by, spec.aggregates, spec.order_by, merged)
        self.results.append(
            MergedResult(item.seq, item.job.label or spec.label, rows, fingerprint_rows(rows))
        )
        return (g, item, True)

    def _scatter_gather(self, seq: int, spec: StarQuerySpec) -> list[_ShardOutcome]:
        """Real execution: scatter to all shards, then gather in shard
        order (the workers run concurrently; collection order only
        affects bookkeeping)."""
        faults = [self.config.fault_injection.get((seq, i)) for i in range(self.config.n_shards)]
        for h, fault in zip(self.workers, faults):
            first_fault = {"crash": "crash", "crash2": "crash", "hang": "hang"}.get(fault)
            try:
                h.send(ShardRequest(seq, spec, first_fault))
            except WorkerCrashed:
                pass  # surfaces as an immediate crash in the gather below
        return [
            self._gather_one(h, seq, spec, fault)
            for h, fault in zip(self.workers, faults)
        ]

    def _gather_one(
        self, handle: WorkerHandle, seq: int, spec: StarQuerySpec, fault: str | None
    ) -> _ShardOutcome:
        cfg = self.config
        try:
            resp = handle.recv(timeout=cfg.shard_timeout_s)
        except WorkerUnresponsive as exc:
            # A stuck shard: kill + respawn so the NEXT query is healthy,
            # but do not retry this one -- the request may be what wedged
            # the worker, and the caller's deadline is already burning.
            self.metrics.shard_timeouts += 1
            self._respawn(handle)
            return _ShardOutcome(
                ok=False, virtual_cost=cfg.timeout_penalty_s, kind="timeout", detail=str(exc)
            )
        except WorkerCrashed as exc:
            return self._retry_after_crash(handle, seq, spec, fault, str(exc))
        return self._accept(resp, seq, retried=False)

    def _retry_after_crash(
        self, handle: WorkerHandle, seq: int, spec: StarQuerySpec, fault: str | None, first: str
    ) -> _ShardOutcome:
        """Crash recovery: fresh process, resend, retry exactly once.  The
        structured failure keeps BOTH reasons when the retry fails too
        (the same contract the sweep fabric's serial retry has)."""
        self._respawn(handle)
        retry_fault = "crash" if fault == "crash2" else None
        try:
            handle.send(ShardRequest(seq, spec, retry_fault))
            resp = handle.recv(timeout=self.config.shard_timeout_s)
        except (WorkerCrashed, WorkerUnresponsive) as exc:
            self._respawn(handle)
            return _ShardOutcome(
                ok=False,
                virtual_cost=self.config.respawn_penalty_s,
                kind="crash",
                detail=f"worker crashed: {first}; retry also failed: {exc}",
            )
        out = self._accept(resp, seq, retried=True)
        if out.ok:
            out.virtual_cost += self.config.respawn_penalty_s
        return out

    def _accept(self, resp: Any, seq: int, retried: bool) -> _ShardOutcome:
        if not isinstance(resp, ShardResponse) or resp.seq != seq:
            # FIFO pipes + fresh-pipe respawns make this unreachable in
            # healthy runs; fail loudly rather than merge the wrong query.
            raise RuntimeError(f"shard protocol violation: expected seq {seq}, got {resp!r}")
        if resp.error is not None:
            return _ShardOutcome(
                ok=False, virtual_cost=0.0, kind="error", detail=resp.error, retried=retried
            )
        return _ShardOutcome(
            ok=True, virtual_cost=resp.svc_seconds, response=resp, retried=retried
        )


# ---------------------------------------------------------------------------
# Report and the one-call entry point
# ---------------------------------------------------------------------------


@dataclass
class ShardReport:
    """Everything one sharded run measured, ready to render or serialize."""

    n_shards: int
    partition: str
    engine: str
    arrival: str
    rate: float
    duration: float | None
    workload: str
    sim_seconds: float
    window: float
    metrics: ShardServiceMetrics
    machine_hz: float
    results: list[MergedResult] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        return self.metrics.throughput(self.window)

    def header(self) -> dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "partition": self.partition,
            "engine": self.engine,
            "arrival": self.arrival,
            "rate": self.rate,
            "duration": self.duration,
            "workload": self.workload,
            "sim_seconds": self.sim_seconds,
        }

    def to_dict(self) -> dict[str, Any]:
        out = self.header()
        out.update(self.metrics.to_dict(hz=self.machine_hz, window=self.window))
        return out

    def fingerprint_lines(self) -> list[str]:
        """``"<seq> <sha256>"`` per merged query -- the artifact CI diffs
        between ``--shards 1`` and ``--shards N`` runs of one trace."""
        return [f"{r.seq} {r.fingerprint}" for r in self.results]

    def write_fingerprints(self, path: str) -> None:
        with open(path, "w") as fh:
            for line in self.fingerprint_lines():
                fh.write(line + "\n")

    def render(self) -> str:
        from repro.bench.reporting import format_table

        m = self.metrics
        lat = m.latency_percentiles()
        qw = m.queue_wait_percentiles()
        rows = [
            ["shards", f"{self.n_shards} ({self.partition}, {self.engine})"],
            ["arrival", f"{self.arrival} @ {self.rate}/s"],
            ["window (s)", f"{self.window:.2f}"],
            ["arrived", m.arrived],
            ["admitted", m.admitted],
            ["dropped (queue full)", m.dropped],
            ["timed out (shed)", m.timed_out],
            ["completed", m.completed],
            ["failed (structured)", m.failed],
            ["throughput (q/s)", f"{self.throughput_qps:.3f}"],
            ["latency p50 (s)", f"{lat['p50']:.3f}"],
            ["latency p95 (s)", f"{lat['p95']:.3f}"],
            ["latency p99 (s)", f"{lat['p99']:.3f}"],
            ["queue wait p95 (s)", f"{qw['p95']:.3f}"],
            ["scatter overhead (s)", f"{m.scatter_overhead_s:.4f}"],
            ["gather overhead (s)", f"{m.gather_overhead_s:.4f}"],
            [
                "partition shipped (bytes)",
                sum(s["shipped_bytes"] for s in m.partition_shipping.values()),
            ],
            ["prewarm scatter (s)", f"{m.prewarm_scatter_s:.4f}"],
            ["prewarm arrange (s)", f"{m.prewarm_arrange_s:.4f}"],
            ["arrangement hits", sum(m.arrange_hits.values())],
            ["peak shard backlog (s)", f"{m.peak_shard_backlog_s:.3f}"],
            ["retries / respawns / timeouts", f"{m.shard_retries} / {m.shard_respawns} / {m.shard_timeouts}"],
        ]
        for name, block in m.per_shard_percentiles().items():
            rows.append([f"{name} svc p95 (s)", f"{block['p95']:.3f} (n={block['count']:.0f})"])
        for name, n in sorted(m.straggler_counts.items()):
            rows.append([f"straggler shard{name}", n])
        return format_table(
            f"serve --shards {self.n_shards}: {self.workload}", ["metric", "value"], rows
        )


def serve_sharded(
    shards: int,
    partition: str = "hash",
    engine: str = "cjoin-sp",
    arrival: str = "poisson",
    rate: float = 8.0,
    duration: float | None = 10.0,
    seed: int = 42,
    workload: str = "ssb-mix",
    sf: float = 1.0,
    config: ServiceConfig = ServiceConfig(),
    shard_timeout_s: float = 60.0,
    trace_path: str | None = None,
    fault_injection: dict | None = None,
) -> ShardReport:
    """Serve a synthetic workload on a sharded tier and report.

    The one-call entry point behind ``python -m repro serve --shards N``
    and ``benchmarks/bench_shard_scaling.py`` -- the sharded sibling of
    :func:`repro.server.service.serve` (same workload names, same arrival
    processes, same admission knobs)."""
    from repro.parallel.cells import DatasetSpec  # local: avoid cycle at import

    shard_config = ShardConfig(
        n_shards=shards,
        partition=partition,
        engine=engine,
        dataset=DatasetSpec("ssb", sf, seed),
        shard_timeout_s=shard_timeout_s,
        fault_injection=fault_injection or {},
    )
    jobs = job_factory(workload, seed)
    arrivals = make_arrivals(arrival, rate, seed, trace_path=trace_path)
    with ShardService(shard_config, config) as service:
        final = service.run(jobs, arrivals, duration)
        window = max(final, duration or 0.0) or 1.0
        return ShardReport(
            n_shards=shards,
            partition=partition,
            engine=engine,
            arrival=arrivals.name,
            rate=rate,
            duration=duration,
            workload=workload,
            sim_seconds=final,
            window=window,
            metrics=service.metrics,
            machine_hz=shard_config.machine.hz,
            results=service.results,
        )
