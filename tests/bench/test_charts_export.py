"""Tests for ASCII charts and result export."""

import json

import pytest

from repro.bench.charts import render_chart
from repro.bench.export import experiment_to_json, run_result_to_dict, series_to_csv
from repro.bench.experiments import ExperimentResult
from repro.bench.runner import RunResult


class TestCharts:
    def test_basic_render(self):
        text = render_chart(
            "t", [1, 2, 4], {"alpha": [1.0, 2.0, 4.0], "beta": [4.0, 2.0, 1.0]}
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "A=alpha" in text and "B=beta" in text
        # Extremes land on the top and bottom rows.
        assert "A" in lines[-4] or "B" in lines[-4]

    def test_marker_collision_resolved(self):
        text = render_chart("t", [1, 2], {"aaa": [1, 2], "abc": [2, 1]})
        assert "A=aaa" in text
        # Second series falls back to another letter.
        assert "B=abc" in text or "C=abc" in text

    def test_overlap_marker(self):
        text = render_chart("t", [1], {"x": [5.0], "y": [5.0]}, log_y=False)
        assert "*" in text

    def test_linear_scale_flat_series(self):
        text = render_chart("t", [1, 2], {"x": [3.0, 3.0]}, log_y=False)
        assert "X" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart("t", [1], {})
        with pytest.raises(ValueError):
            render_chart("t", [1, 2], {"x": [1.0]})

    def test_x_labels_present(self):
        text = render_chart("t", [1, 64, 256], {"x": [1.0, 2.0, 3.0]})
        assert "256" in text.splitlines()[-2]


def make_run_result():
    return RunResult(
        config_name="QPipe-SP",
        n_queries=2,
        response_times=[1.0, 3.0],
        sim_seconds=3.5,
        avg_cores_used=4.2,
        avg_read_mb_s=10.0,
        cpu_breakdown={"hashing": 1.0, "joins": 2.0},
        sharing={"tablescan": 3},
        admission_seconds=0.0,
    )


class TestExport:
    def test_run_result_to_dict(self):
        d = run_result_to_dict(make_run_result())
        assert d["config"] == "QPipe-SP"
        assert d["mean_response_s"] == pytest.approx(2.0)
        assert d["sharing"] == {"tablescan": 3}

    def test_experiment_to_json_roundtrip(self):
        r = ExperimentResult(
            "figX",
            ["table"],
            {"xs": [1, 2], "rt": {"a": [1.0, 2.0]}, "cells": {"a": [make_run_result()]}},
        )
        parsed = json.loads(experiment_to_json(r))
        assert parsed["experiment"] == "figX"
        assert parsed["data"]["rt"]["a"] == [1.0, 2.0]
        assert parsed["data"]["cells"]["a"][0]["config"] == "QPipe-SP"

    def test_series_to_csv(self):
        csv_text = series_to_csv("n", [1, 2], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = csv_text.strip().splitlines()
        assert lines[0] == "n,a,b"
        assert lines[1] == "1,1.0,3.0"
        assert lines[2] == "2,2.0,4.0"

    def test_series_to_csv_length_mismatch(self):
        with pytest.raises(ValueError):
            series_to_csv("n", [1, 2], {"a": [1.0]})
