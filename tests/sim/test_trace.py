"""Tests for the simulation tracer."""

import pytest

from repro.sim import CPU, IO, SLEEP, Simulator
from repro.sim.machine import DiskSpec, MachineSpec
from repro.sim.trace import Tracer


def make_sim():
    return Simulator(
        MachineSpec(cores=2, hz=1e9, oversub_penalty=0.0, disks=(DiskSpec(bandwidth=100e6),))
    )


def worker():
    yield CPU(1e8, "hashing")
    yield IO("disk", 1e6)
    yield SLEEP(0.5)


class TestTracer:
    def test_records_commands_and_completion(self):
        sim = make_sim()
        tracer = Tracer(sim).attach()
        sim.spawn(worker(), "w")
        sim.run()
        kinds = [e.kind for e in tracer.events if e.thread == "w"]
        assert kinds == ["cpu", "io", "sleep", "done"]
        cpu_event = tracer.events[0]
        assert "hashing" in cpu_event.detail
        assert cpu_event.time == 0.0

    def test_context_manager_detaches(self):
        sim = make_sim()
        with Tracer(sim) as tracer:
            sim.spawn(worker(), "w")
            sim.run()
        n = len(tracer.events)
        sim.spawn(worker(), "w2")
        sim.run()
        assert len(tracer.events) == n  # nothing recorded after detach

    def test_thread_filter(self):
        sim = make_sim()
        tracer = Tracer(sim, thread_filter=lambda name: name.startswith("keep")).attach()
        sim.spawn(worker(), "keep-me")
        sim.spawn(worker(), "drop-me")
        sim.run()
        assert {e.thread for e in tracer.events} == {"keep-me"}

    def test_ring_buffer_drops_oldest(self):
        sim = make_sim()
        tracer = Tracer(sim, max_events=3).attach()
        sim.spawn(worker(), "w")
        sim.run()
        assert len(tracer.events) == 3
        assert tracer.dropped == 1
        assert tracer.events[-1].kind == "done"

    def test_failed_thread_recorded(self):
        sim = make_sim()
        tracer = Tracer(sim).attach()

        def boom():
            yield CPU(1)
            raise ValueError("x")

        def parent():
            t = sim.spawn(boom(), "boom")
            try:
                yield from t.join()
            except ValueError:
                pass

        sim.spawn(parent(), "parent")
        sim.run()
        assert any(e.kind == "failed" for e in tracer.events)

    def test_render_and_summary(self):
        sim = make_sim()
        tracer = Tracer(sim).attach()
        sim.spawn(worker(), "w")
        sim.run()
        text = tracer.render(limit=2)
        assert text.startswith("#")
        assert len(text.splitlines()) == 3
        summary = tracer.summary()
        assert summary["w"]["cpu"] == 1
        assert summary["w"]["done"] == 1

    def test_double_attach_rejected(self):
        tracer = Tracer(make_sim()).attach()
        with pytest.raises(RuntimeError):
            tracer.attach()

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            Tracer(make_sim(), max_events=0)

    def test_traces_real_engine_run(self):
        """Attach to a full QPipe run and check stage threads appear."""
        from repro.data import generate_ssb
        from repro.engine import QPIPE_SP, QPipeEngine
        from repro.query.ssb_queries import q32
        from repro.sim.costmodel import DEFAULT_COST_MODEL
        from repro.storage import StorageConfig, StorageManager

        ssb = generate_ssb(0.5, seed=3)
        sim = Simulator(MachineSpec())
        tracer = Tracer(sim).attach()
        storage = StorageManager(sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident="memory"))
        eng = QPipeEngine(sim, storage, QPIPE_SP)
        eng.submit(q32("CHINA", "FRANCE", 1993, 1996))
        sim.run()
        threads = {e.thread for e in tracer.events}
        assert any(t.startswith("scan-") for t in threads)
        assert any("-join-" in t for t in threads)
        assert any("-client" in t for t in threads)
