"""The aggregation stage (hash group-by, step WoP).

Blocking operator: all results are emitted after the input drains, so the
whole execution is inside the step Window of Opportunity -- an identical
packet arriving any time before completion reuses the full result."""

from __future__ import annotations

from typing import Any, Iterator

from repro.sim.commands import CPU
from repro.engine.exchange import END
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.engine.stages.inputs import FilteredInput
from repro.query.plan import AggregateNode, AggSpec
from repro.storage.page import Batch


class _Accumulator:
    """Accumulators for one group (one slot per aggregate spec)."""

    __slots__ = ("sums", "counts", "mins", "maxs")

    def __init__(self, n: int):
        self.sums = [0.0] * n
        self.counts = [0] * n
        self.mins: list[Any] = [None] * n
        self.maxs: list[Any] = [None] * n


def _finalize(spec: AggSpec, acc: _Accumulator, i: int) -> Any:
    if spec.func == "sum":
        return acc.sums[i]
    if spec.func == "count":
        return acc.counts[i]
    if spec.func == "avg":
        return acc.sums[i] / acc.counts[i] if acc.counts[i] else 0.0
    if spec.func == "min":
        return acc.mins[i]
    return acc.maxs[i]


class AggregateStage(Stage):
    """The hash group-by aggregation stage (step WoP)."""
    def __init__(self, engine):
        super().__init__(engine, "aggregate")

    def run(self, packet: Packet, child_input: FilteredInput) -> None:
        self.spawn_worker(packet, self._work(packet, child_input))

    def _work(self, packet: Packet, child_input: FilteredInput) -> Iterator[Any]:
        node: AggregateNode = packet.node
        cost = self.engine.cost
        exchange = packet.exchange
        yield CPU(cost.packet_dispatch, "misc")

        schema = child_input.schema
        group_idx = schema.indices(node.group_by)
        value_fns = [a.expr.compile(schema) if a.expr is not None else None for a in node.aggregates]
        specs = node.aggregates
        nspecs = len(specs)
        groups: dict[tuple, _Accumulator] = {}

        while True:
            batch = yield from child_input.read()
            if batch is END:
                break
            rows = batch.rows
            if not rows:
                continue
            n, w = len(rows), batch.weight
            # Group-table hashing counts as aggregation work (the paper's
            # "Hashing" bucket covers hash-join hash()/equal() only).
            yield CPU(cost.hash_func * n * w, "aggregation")
            yield cost.aggregate(n, w, functions=nspecs)
            for r in rows:
                key = tuple(r[i] for i in group_idx)
                acc = groups.get(key)
                if acc is None:
                    acc = groups[key] = _Accumulator(nspecs)
                # ``w`` rows of real data stand behind each generated row:
                # additive aggregates scale by the weight so results match
                # what the represented real table would produce.
                for i, fn in enumerate(value_fns):
                    spec = specs[i]
                    if spec.func == "count":
                        acc.counts[i] += w
                        continue
                    v = fn(r)
                    if spec.func in ("sum", "avg"):
                        acc.sums[i] += v * w
                        acc.counts[i] += w
                    elif spec.func == "min":
                        acc.mins[i] = v if acc.mins[i] is None else min(acc.mins[i], v)
                    else:
                        acc.maxs[i] = v if acc.maxs[i] is None else max(acc.maxs[i], v)

        out_rows = [
            key + tuple(_finalize(specs[i], acc, i) for i in range(nspecs))
            for key, acc in groups.items()
        ]
        packet.mark_started()
        self.unregister(packet)
        if out_rows:
            yield from exchange.emit(Batch(out_rows, weight=1.0))
        exchange.close()
        packet.finished = True
