"""Benchmark harness: workload generators, the experiment runner, and one
function per table/figure of the paper's evaluation (Section 5).

``benchmarks/`` drives these through pytest-benchmark; the functions are
also importable for ad-hoc exploration (see ``examples/``).
"""

from repro.bench.runner import RunResult, ThroughputResult, run_batch, run_closed_loop
from repro.bench.workload import (
    QueryJob,
    ssb_mix_workload,
    q32_limited_plans_workload,
    q32_random_workload,
    q32_selectivity_workload,
    tpch_q1_workload,
)

__all__ = [
    "QueryJob",
    "RunResult",
    "ThroughputResult",
    "q32_limited_plans_workload",
    "q32_random_workload",
    "q32_selectivity_workload",
    "run_batch",
    "run_closed_loop",
    "ssb_mix_workload",
    "tpch_q1_workload",
]
