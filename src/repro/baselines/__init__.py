"""Baselines: a reference in-memory evaluator (correctness oracle) and a
Volcano-style query-centric engine standing in for the paper's PostgreSQL.
"""

from repro.baselines.reference import evaluate_plan
from repro.baselines.volcano import VolcanoEngine

__all__ = ["VolcanoEngine", "evaluate_plan"]
