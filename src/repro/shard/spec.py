"""Shard-tier configuration and the scatter/gather wire protocol.

Everything a worker needs is plain picklable data, the same discipline as
:class:`~repro.parallel.cells.CellSpec`: the :class:`ShardConfig` describes
the topology (dataset, partitioning, engine, cost knobs) and is shipped
once at spawn; each query then scatters as a :class:`ShardRequest` holding
the picklable :class:`~repro.query.star.StarQuerySpec`, and gathers as one
:class:`ShardResponse` per shard holding the partial-aggregate state
(:mod:`repro.query.merge`) plus the shard's *simulated* service time.

Timing model: workers measure in **simulated seconds** (a fresh
discrete-event engine per request, like every other measurement in this
repo); the front end composes those into a deterministic virtual timeline
(see :mod:`repro.shard.service`).  Only ``shard_timeout_s`` is wall-clock:
it bounds how long the gather will really wait for a stuck worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.config import CJOIN_SP, QPIPE_SP, EngineConfig
from repro.parallel.cells import DatasetSpec, current_fast_flags, current_gqp_flags
from repro.query.merge import PartialAggState
from repro.query.star import StarQuerySpec
from repro.shard.partition import PARTITION_MODES
from repro.sim.machine import PAPER_MACHINE, MachineSpec
from repro.storage.manager import StorageConfig

__all__ = ["SHARD_ENGINES", "ShardConfig", "ShardRequest", "ShardResponse"]

#: Engine configurations a shard worker can run (each shard gets its own
#: full engine instance; CJOIN-SP shares work *within* a shard exactly as
#: the single-process tier does).
SHARD_ENGINES: dict[str, EngineConfig] = {"cjoin-sp": CJOIN_SP, "qpipe-sp": QPIPE_SP}


@dataclass(frozen=True)
class ShardConfig:
    """Topology and cost knobs of one sharded service (picklable; shipped
    to every worker at spawn)."""

    n_shards: int = 2
    #: fact-row placement, see :mod:`repro.shard.partition`
    partition: str = "hash"
    #: per-shard engine, a key of :data:`SHARD_ENGINES`
    engine: str = "cjoin-sp"
    fact_table: str = "lineorder"
    dataset: DatasetSpec = DatasetSpec("ssb", 1.0, 42)
    storage: StorageConfig = StorageConfig()
    machine: MachineSpec = PAPER_MACHINE
    #: host fast-path / GQP-plane flags captured at construction in the
    #: parent (same mechanism as CellSpec: workers replay the parent mode)
    fast_flags: tuple[bool, ...] = field(default_factory=current_fast_flags)
    gqp_flags: tuple[bool, bool] = field(default_factory=current_gqp_flags)
    #: wall-clock seconds the gather waits per shard before declaring the
    #: worker stuck (kill + respawn, no retry)
    shard_timeout_s: float = 60.0
    #: virtual (simulated) cost of scattering one plan spec to one shard
    scatter_cost_s: float = 1e-4
    #: virtual cost of merging one shard's partial state at the gather
    gather_cost_s: float = 5e-5
    #: virtual charge on a shard whose crashed query was retried (models
    #: respawn + replay; keeps the timeline deterministic under injection)
    respawn_penalty_s: float = 0.05
    #: virtual charge on a shard whose query timed out (the work is lost)
    timeout_penalty_s: float = 5.0
    #: deterministic fault injection for tests: ``(seq, shard_id) ->``
    #: ``"crash"`` (crash once; the retry succeeds), ``"crash2"`` (crash
    #: on the retry too => structured failure) or ``"hang"`` (stuck until
    #: the wall-clock timeout kills the worker).  The *front end* owns the
    #: schedule -- it decides what fault (if any) rides on each attempt's
    #: :class:`ShardRequest` -- so a respawned worker never re-reads it.
    fault_injection: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.partition not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition!r} "
                f"(choose from: {', '.join(PARTITION_MODES)})"
            )
        if self.engine not in SHARD_ENGINES:
            raise ValueError(
                f"unknown shard engine {self.engine!r} "
                f"(choose from: {', '.join(SHARD_ENGINES)})"
            )
        if self.shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")

    @property
    def engine_config(self) -> EngineConfig:
        return SHARD_ENGINES[self.engine]

    @property
    def partition_salt(self) -> int:
        """Placement salt, derived from the dataset seed so the parent and
        every worker agree on it without coordination."""
        return self.dataset.seed


@dataclass(frozen=True)
class ShardRequest:
    """One scattered query: evaluate ``spec``'s joins over your shard and
    reply with the partial aggregate."""

    seq: int
    spec: StarQuerySpec
    #: test-only injected fault for THIS attempt: None | "crash" | "hang"
    fault: str | None = None


@dataclass(frozen=True)
class ShardResponse:
    """One shard's answer to a :class:`ShardRequest`."""

    seq: int
    shard_id: int
    #: partial-aggregate state (exact-arithmetic; see repro.query.merge)
    state: PartialAggState
    #: simulated seconds the shard's engine took on its join-only plan
    svc_seconds: float
    #: host wall-clock seconds spent in the worker (attribution only --
    #: never part of any simulated measurement)
    wall_s: float
    #: generated fact rows in this worker's partition (0 is legal)
    fact_rows: int
    #: shared-arrangement cache hits this request scored in the worker
    #: (host-side attribution, like ``wall_s``: the fork-COW prewarmed
    #: arrangements make reuse the steady state)
    arrange_hits: int = 0
    #: set instead of ``state`` when plan build/execution raised: the
    #: structured failure travels the pipe, it never kills the worker
    error: str | None = None
