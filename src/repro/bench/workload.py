"""Workload generators for the paper's experiments.

All generators are deterministic in their seed.  A workload is a list of
:class:`QueryJob`\\ s; each job carries either a star-query spec (compiled
per engine configuration at submit time) or an explicit plan (TPC-H Q1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.rng import make_rng
from repro.data.ssb import SSB_NATIONS, SSB_REGIONS, YEARS, SsbDataset
from repro.data.tpch import TpchDataset
from repro.query.expr import Between, Cmp, Col
from repro.query.plan import AggSpec, DimJoinSpec, PlanNode
from repro.query.ssb_queries import (
    q32_selectivity,
    random_q11,
    random_q21,
    random_q32,
)
from repro.query.star import StarQuerySpec
from repro.query.tpch_queries import tpch_q1_plan


@dataclass(frozen=True)
class QueryJob:
    """One query to submit: a spec (star query) or an explicit plan."""

    spec: StarQuerySpec | None = None
    plan: PlanNode | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.plan is None):
            raise ValueError("exactly one of spec/plan must be given")


# ---------------------------------------------------------------------------
# SSB Q3.2 workloads (sensitivity analysis, Section 5.2)
# ---------------------------------------------------------------------------


def q32_random_workload(n: int, seed: int = 1) -> list[QueryJob]:
    """``n`` random Q3.2 instances: the low-similarity workload of the
    concurrency experiments (Figure 10); fact selectivity 0.02%-0.16%."""
    rng = make_rng(seed, "q32-random")
    return [QueryJob(spec=random_q32(rng)) for _ in range(n)]


def q32_limited_plans_workload(n: int, n_plans: int, seed: int = 1) -> list[QueryJob]:
    """``n`` Q3.2 instances drawn round-robin from a pool of ``n_plans``
    distinct plans -- the similarity knob of Figures 14/15."""
    if n_plans < 1:
        raise ValueError("need at least one plan")
    rng = make_rng(seed, "q32-plans", n_plans)
    pool: list[StarQuerySpec] = []
    signatures: set[tuple] = set()
    attempts = 0
    while len(pool) < n_plans:
        spec = random_q32(rng)
        attempts += 1
        if spec.signature not in signatures:
            signatures.add(spec.signature)
            pool.append(spec)
        if attempts > 100 * n_plans:
            raise RuntimeError(f"cannot draw {n_plans} distinct Q3.2 plans")
    return [QueryJob(spec=pool[i % n_plans]) for i in range(n)]


def q32_selectivity_workload(n: int, selectivity: float, seed: int = 1) -> list[QueryJob]:
    """``n`` modified-Q3.2 instances targeting a fact-tuple ``selectivity``
    (Figures 11/12); predicates are disjoint random disjunctions, so the
    similarity factor is minimal."""
    rng = make_rng(seed, "q32-sel", selectivity)
    return [QueryJob(spec=q32_selectivity(selectivity, rng)) for _ in range(n)]


# ---------------------------------------------------------------------------
# GQP filter-chain ordering workloads (adaptive-ordering benchmark)
# ---------------------------------------------------------------------------


def _star_3dim(dims: tuple[DimJoinSpec, ...], label: str) -> StarQuerySpec:
    return StarQuerySpec(
        fact_table="lineorder",
        dims=dims,
        group_by=("c_city", "s_city", "d_year"),
        aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        order_by=(("d_year", True), ("revenue", False)),
        label=label,
    )


def gqp_skewed_workload(n: int, seed: int = 1) -> list[QueryJob]:
    """``n`` Q3.2-shaped queries whose *plan-insertion* dimension order is
    pessimal for a static CJOIN chain: the pass-everything date filter
    (full year range) comes first, a region filter (~1/5 of customers)
    second, and the most selective nation filter (~1/25 of suppliers)
    last.  Adaptive ordering should learn to invert the chain; the gap to
    a static run is the adaptive plane's headline win."""
    rng = make_rng(seed, "gqp-skew")
    jobs: list[QueryJob] = []
    for _ in range(n):
        region = rng.choice(SSB_REGIONS)
        nation = rng.choice(SSB_NATIONS)
        dims = (
            DimJoinSpec(
                "date",
                "lo_orderdate",
                "d_datekey",
                Between("d_year", YEARS[0], YEARS[-1]),
                payload=("d_year",),
            ),
            DimJoinSpec(
                "customer",
                "lo_custkey",
                "c_custkey",
                Cmp("=", "c_region", region),
                payload=("c_city",),
            ),
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_nation", nation),
                payload=("s_city",),
            ),
        )
        jobs.append(QueryJob(spec=_star_3dim(dims, "gqp-skew")))
    return jobs


def gqp_uniform_workload(n: int, seed: int = 1) -> list[QueryJob]:
    """``n`` Q3.2-shaped queries whose three filters have *similar* pass
    rates (region predicates on customer and supplier, a two-year date
    range): no chain order is much better than another, so adaptive
    ordering should neither help nor thrash here -- the control arm of
    the ordering benchmark."""
    rng = make_rng(seed, "gqp-uniform")
    jobs: list[QueryJob] = []
    for _ in range(n):
        c_region = rng.choice(SSB_REGIONS)
        s_region = rng.choice(SSB_REGIONS)
        y1 = rng.randrange(YEARS[0], YEARS[-1])
        dims = (
            DimJoinSpec(
                "date",
                "lo_orderdate",
                "d_datekey",
                Between("d_year", y1, y1 + 1),
                payload=("d_year",),
            ),
            DimJoinSpec(
                "customer",
                "lo_custkey",
                "c_custkey",
                Cmp("=", "c_region", c_region),
                payload=("c_city",),
            ),
            DimJoinSpec(
                "supplier",
                "lo_suppkey",
                "s_suppkey",
                Cmp("=", "s_region", s_region),
                payload=("s_city",),
            ),
        )
        jobs.append(QueryJob(spec=_star_3dim(dims, "gqp-uniform")))
    return jobs


# ---------------------------------------------------------------------------
# TPC-H Q1 (Figure 6) and the SSB mix (Figure 16)
# ---------------------------------------------------------------------------


def tpch_q1_workload(n: int, dataset: TpchDataset) -> list[QueryJob]:
    """``n`` *identical* TPC-H Q1 instances (Figure 6 shares the scan)."""
    plan = tpch_q1_plan(dataset.lineitem)
    return [QueryJob(plan=plan, label="Q1") for _ in range(n)]


def ssb_mix_workload(n: int, seed: int = 1) -> list[QueryJob]:
    """``n`` queries instantiated from Q1.1, Q2.1, Q3.2 round-robin with
    random predicates (Figure 16's query mix)."""
    rng = make_rng(seed, "ssb-mix")
    makers = (random_q11, random_q21, random_q32)
    return [QueryJob(spec=makers[i % 3](rng)) for i in range(n)]


def mix_spec_factory(seed: int = 1):
    """A ``(client_id, k) -> StarQuerySpec`` factory for closed-loop clients
    (round-robin over the three templates, per-client RNG streams)."""
    makers = (random_q11, random_q21, random_q32)

    def factory(client_id: int, k: int) -> StarQuerySpec:
        rng = make_rng(seed, "mix-client", client_id, k)
        return makers[(client_id + k) % 3](rng)

    return factory
