"""Paper Figure 14: 16 possible Q3.2 plans (high similarity), SF=1,
disk-resident.

Shape claims checked at the highest concurrency:
* QPipe-SP beats plain CJOIN (SP exploits the common sub-plans that the
  GQP evaluates redundantly);
* CJOIN-SP is the best of all four configurations;
* QPipe-CS (scan sharing only) is the worst of the four;
* CJOIN-SP records many whole-CJOIN-packet shares (paper: ~239 at 256
  queries for 16 plans).
"""

from repro.bench.experiments import fig14_similarity


def bench_fig14_similarity(once, save_report, full_mode):
    result = once(fig14_similarity, full=full_mode)
    save_report("fig14_similarity", result.render())

    rt = result.data["rt"]
    hi = -1
    assert rt["QPipe-SP"][hi] < rt["CJOIN"][hi]
    assert rt["CJOIN-SP"][hi] <= rt["CJOIN"][hi]
    assert rt["CJOIN-SP"][hi] < rt["QPipe-CS"][hi]
    assert max(rt[k][hi] for k in rt) == rt["QPipe-CS"][hi]

    cells = result.data["cells"]
    n_top = result.data["concurrency"][hi]
    shares = cells["CJOIN-SP"][hi].sharing.get("cjoin", 0)
    n_plans = min(16, n_top)
    # Nearly every duplicate packet shares (submission dispatch may close
    # the WoP for a handful; the paper itself saw 239 of 240 possible).
    assert shares >= 0.9 * (n_top - n_plans)
