"""Edge cases of the CJOIN pipeline."""

import pytest

from repro.baselines import evaluate_plan
from repro.data import generate_ssb
from repro.engine import CJOIN, CJOIN_SP, QPipeEngine
from repro.query.expr import Cmp
from repro.query.plan import AggSpec, DimJoinSpec
from repro.query.ssb_queries import q11, q32
from repro.query.star import StarQuerySpec
from repro.query.expr import Col
from repro.sim import Simulator
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.machine import MachineSpec
from repro.storage import StorageConfig, StorageManager


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(0.5, seed=13)


def norm(rows):
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row) for row in rows
    )


def make_engine(ssb, config=CJOIN, resident="memory", **storage_kwargs):
    sim = Simulator(MachineSpec())
    storage = StorageManager(
        sim, DEFAULT_COST_MODEL, ssb.tables, StorageConfig(resident=resident, **storage_kwargs)
    )
    return sim, QPipeEngine(sim, storage, config)


class TestEdgeCases:
    def test_empty_result_query(self, ssb):
        """A dimension predicate selecting nothing: the query completes with
        zero rows (its bitmap bit never survives the filter)."""
        spec = StarQuerySpec(
            fact_table="lineorder",
            dims=(
                DimJoinSpec(
                    "customer",
                    "lo_custkey",
                    "c_custkey",
                    Cmp("=", "c_nation", "NOWHERE"),
                    payload=("c_city",),
                ),
            ),
            group_by=("c_city",),
            aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        )
        sim, eng = make_engine(ssb)
        h = eng.submit(spec)
        sim.run()
        assert h.results == []
        assert h.done

    def test_fact_predicate_rejecting_everything(self, ssb):
        spec = q11(1993, 99.0, 100.0, 0)  # impossible discount/quantity band
        sim, eng = make_engine(ssb)
        h = eng.submit(spec)
        sim.run()
        assert h.results == []

    def test_empty_alongside_nonempty(self, ssb):
        good = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(good.to_query_centric_plan(ssb.tables)))
        bad = q11(1993, 99.0, 100.0, 0)
        sim, eng = make_engine(ssb)
        h_good = eng.submit(good)
        h_bad = eng.submit(bad)
        sim.run()
        assert norm(h_good.results) == oracle
        assert h_bad.results == []

    def test_sequential_waves_reuse_slots_many_times(self, ssb):
        """Three waves of queries: slots retire, are reclaimed, and reused;
        results stay exact throughout."""
        sim, eng = make_engine(ssb)
        specs = [
            q32("CHINA", "FRANCE", 1993, 1996),
            q32("JAPAN", "BRAZIL", 1992, 1995),
            q32("KENYA", "PERU", 1994, 1997),
        ]
        oracles = [norm(evaluate_plan(s.to_query_centric_plan(ssb.tables))) for s in specs]

        results = {}

        def waves():
            for i, spec in enumerate(specs):
                h = eng.submit(spec)
                yield from h.wait()
                results[i] = norm(h.results)

        sim.spawn(waves(), "waves")
        sim.run()
        assert [results[i] for i in range(3)] == oracles
        pipeline = eng.cjoin_stage.pipeline_for("lineorder")
        assert pipeline.slots.high_water <= 2  # slots were recycled

    def test_direct_io_admission_still_correct(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, resident="disk", direct_io=True)
        h = eng.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    def test_direct_io_slower_than_buffered(self, ssb):
        spec = q32("CHINA", "FRANCE", 1993, 1996)

        def response(direct):
            sim, eng = make_engine(ssb, resident="disk", direct_io=direct)
            h = eng.submit(spec)
            sim.run()
            return h.response_time

        assert response(True) > response(False)

    def test_cjoin_sp_fifo_comm_model(self, ssb):
        """CJOIN-SP under push-based communication: satellites receive
        copies pushed by the distributor."""
        import dataclasses

        spec = q32("CHINA", "FRANCE", 1993, 1996)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb, dataclasses.replace(CJOIN_SP, comm="fifo"))
        handles = [eng.submit(spec) for _ in range(3)]
        sim.run()
        for h in handles:
            assert norm(h.results) == oracle
        assert eng.sharing_summary().get("cjoin", 0) == 2

    def test_single_dim_star_query(self, ssb):
        spec = q11(1994, 1.0, 3.0, 25)
        oracle = norm(evaluate_plan(spec.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb)
        h = eng.submit(spec)
        sim.run()
        assert norm(h.results) == oracle

    def test_queries_with_disjoint_dims_share_pipeline(self, ssb):
        """Two queries referencing different dimensions coexist in one GQP:
        each passes freely through the other's filters (pass masks)."""
        a = q11(1994, 1.0, 3.0, 25)  # date only
        b = StarQuerySpec(
            fact_table="lineorder",
            dims=(
                DimJoinSpec(
                    "supplier",
                    "lo_suppkey",
                    "s_suppkey",
                    Cmp("=", "s_region", "ASIA"),
                    payload=("s_nation",),
                ),
            ),
            group_by=("s_nation",),
            aggregates=(AggSpec("sum", Col("lo_revenue"), "revenue"),),
        )
        oracle_a = norm(evaluate_plan(a.to_query_centric_plan(ssb.tables)))
        oracle_b = norm(evaluate_plan(b.to_query_centric_plan(ssb.tables)))
        sim, eng = make_engine(ssb)
        h_a = eng.submit(a)
        h_b = eng.submit(b)
        sim.run()
        assert norm(h_a.results) == oracle_a
        assert norm(h_b.results) == oracle_b
