"""The discrete-event loop.

:class:`Simulator` owns the clock, the event heap, the GPS CPU pool and the
disk devices, and drives simulated threads (generators) by interpreting the
commands they yield.  The loop is fully deterministic: ties on the event heap
break by insertion order and nothing consults wall-clock time or unseeded
randomness.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, ClassVar, Generator

from repro.sim.commands import BLOCK, CpuCommand, IoCommand, SleepCommand
from repro.sim.cpu import CpuPool
from repro.sim.iodev import IoDevice
from repro.sim.machine import PAPER_MACHINE, MachineSpec
from repro.sim.metrics import Metrics
from repro.sim.task import SimThread, ThreadState


class DeadlockError(RuntimeError):
    """Raised when the event heap drains while non-daemon threads are still
    blocked -- in this codebase that always means an engine bug (a buffer
    that was never closed, a lock never released)."""


class SimulationError(RuntimeError):
    """An exception escaped a simulated thread that nobody was joining."""


class Simulator:
    """Event loop for one simulated run.

    Parameters
    ----------
    machine:
        Hardware configuration; defaults to the paper's 24-core testbed.
    """

    _active: ClassVar["Simulator | None"] = None

    def __init__(self, machine: MachineSpec = PAPER_MACHINE):
        self.machine = machine
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.cpu = CpuPool(
            machine.cores,
            machine.hz,
            oversub_penalty=machine.oversub_penalty,
            oversub_exponent=machine.oversub_exponent,
        )
        self.devices: dict[str, IoDevice] = {
            d.name: IoDevice(
                d.name,
                d.bandwidth,
                seek_penalty=d.seek_penalty,
                min_efficiency=d.min_efficiency,
                random_multiplier=d.random_multiplier,
            )
            for d in machine.disks
        }
        self.metrics = Metrics()
        self.current: SimThread | None = None
        self.threads: list[SimThread] = []
        self._daemons: set[SimThread] = set()
        self._pending_error: tuple[SimThread, BaseException] | None = None
        Simulator._active = self

    # ------------------------------------------------------------------
    @classmethod
    def current_thread(cls) -> SimThread:
        """The thread currently being stepped (for join registration)."""
        sim = cls._active
        if sim is None or sim.current is None:
            raise RuntimeError("no simulated thread is running")
        return sim.current

    # ------------------------------------------------------------------
    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str,
        query_id: int | None = None,
        daemon: bool = False,
    ) -> SimThread:
        """Create a thread from generator ``gen`` and schedule its first step
        at the current simulated time."""
        thread = SimThread(gen, name, query_id=query_id)
        thread.state = ThreadState.READY
        thread.start_time = self.now
        self.threads.append(thread)
        if daemon:
            self._daemons.add(thread)
        self.call_at(self.now, lambda: self._resume(thread))
        return thread

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at simulated time ``when``."""
        if when < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (max(when, self.now), self._seq, fn))

    def unblock(self, thread: SimThread, value: Any = None) -> bool:
        """Wake ``thread`` (previously parked on BLOCK).  Returns False if it
        was not blocked (e.g. already woken) -- callers that must wake exactly
        one thread should check."""
        if thread.state is not ThreadState.BLOCKED:
            return False
        thread.state = ThreadState.READY
        self.call_at(self.now, lambda: self._resume(thread, value))
        return True

    # ------------------------------------------------------------------
    def _resume(self, thread: SimThread, value: Any = None) -> None:
        if thread.state is not ThreadState.READY:
            # A stale wakeup (e.g. thread already finished); ignore.
            return
        prev = self.current
        self.current = thread
        try:
            cmd = thread.gen.send(value)
        except StopIteration as stop:
            self._finish(thread, result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must capture engine bugs
            self._finish(thread, error=exc)
            return
        finally:
            self.current = prev
        self._dispatch(thread, cmd)

    def _finish(self, thread: SimThread, result: Any = None, error: BaseException | None = None) -> None:
        thread.result = result
        thread.error = error
        thread.state = ThreadState.FAILED if error else ThreadState.DONE
        thread.finish_time = self.now
        self._daemons.discard(thread)
        joiners, thread._joiners = thread._joiners, []
        for j in joiners:
            self.unblock(j)
        if error is not None and not joiners:
            # Nobody will observe the failure through join(): abort the run.
            if self._pending_error is None:
                self._pending_error = (thread, error)

    def _dispatch(self, thread: SimThread, cmd: Any) -> None:
        if isinstance(cmd, CpuCommand):
            self.metrics.charge_cpu(cmd.cycles, cmd.category, thread.query_id)
            if cmd.cycles <= 0:
                thread.state = ThreadState.READY
                self.call_at(self.now, lambda: self._resume(thread))
                return
            thread.state = ThreadState.ON_CPU
            self.cpu.add(self.now, thread, cmd.cycles, self._make_waker(thread))
            self._arm_pool(self.cpu)
        elif isinstance(cmd, IoCommand):
            device = self.devices.get(cmd.device)
            if device is None:
                raise SimulationError(f"unknown device {cmd.device!r} (thread {thread.name})")
            if cmd.nbytes <= 0:
                thread.state = ThreadState.READY
                self.call_at(self.now, lambda: self._resume(thread))
                return
            thread.state = ThreadState.ON_IO
            device.add(self.now, thread, cmd.nbytes, cmd.sequential, self._make_waker(thread))
            self._arm_pool(device)
        elif isinstance(cmd, SleepCommand):
            thread.state = ThreadState.SLEEPING

            def wake() -> None:
                if thread.state is ThreadState.SLEEPING:
                    thread.state = ThreadState.READY
                    self._resume(thread)

            self.call_at(self.now + max(cmd.delay, 0.0), wake)
        elif cmd is BLOCK:
            thread.state = ThreadState.BLOCKED
        else:
            raise SimulationError(
                f"thread {thread.name!r} yielded {cmd!r}; did you forget 'yield from'?"
            )

    def _make_waker(self, thread: SimThread) -> Callable[[], None]:
        def wake() -> None:
            thread.state = ThreadState.READY
            self._resume(thread)

        return wake

    def _arm_pool(self, pool: CpuPool | IoDevice) -> None:
        when = pool.next_completion(self.now)
        if when is None:
            return
        version = pool.version

        def fire() -> None:
            if pool.version != version:
                return  # membership changed; a fresher event is armed
            completed = pool.pop_completed(self.now)
            if not completed:
                # Float round-off left the top element a hair short; nudge.
                self.call_at(self.now + 1e-9, fire)
                return
            for _thread, on_done in completed:
                on_done()
            self._arm_pool(pool)

        self.call_at(when, fire)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains (or simulated time passes
        ``until``).  Returns the final simulated time.

        Raises
        ------
        SimulationError
            if an exception escaped a thread with no joiner.
        DeadlockError
            if non-daemon threads remain blocked with no pending events.
        """
        prev_active = Simulator._active
        Simulator._active = self
        try:
            while self._heap:
                when, _seq, fn = heapq.heappop(self._heap)
                if until is not None and when > until:
                    heapq.heappush(self._heap, (when, _seq, fn))
                    self.now = until
                    break
                self.now = when
                fn()
                if self._pending_error is not None:
                    thread, error = self._pending_error
                    raise SimulationError(
                        f"unhandled exception in simulated thread {thread.name!r}"
                    ) from error
            else:
                self._check_deadlock()
            # Settle pool metric integrals at the final time.
            self.cpu.advance(self.now)
            for device in self.devices.values():
                device.advance(self.now)
            return self.now
        finally:
            Simulator._active = prev_active if prev_active is not None else self

    def _check_deadlock(self) -> None:
        stuck = [
            t
            for t in self.threads
            if t.alive and t not in self._daemons and t.state is ThreadState.BLOCKED
        ]
        if stuck:
            names = ", ".join(t.name for t in stuck[:12])
            raise DeadlockError(
                f"{len(stuck)} non-daemon thread(s) blocked with no pending events: {names}"
            )

    # ------------------------------------------------------------------
    @property
    def disk(self) -> IoDevice:
        """The primary disk device."""
        return self.devices[self.machine.primary_disk.name]

    def avg_cores_used(self, window: float | None = None) -> float:
        """Average busy cores over ``window`` (default: the busy period)."""
        w = window if window is not None else self.cpu.busy_time
        return self.cpu.avg_cores_used(w) if w else 0.0

    def avg_read_mb_per_s(self, window: float | None = None) -> float:
        """Average delivered disk read rate in MB/s over ``window``
        (default: the device's busy period)."""
        dev = self.disk
        w = window if window is not None else dev.busy_time
        return dev.avg_read_rate(w) / (1 << 20) if w else 0.0
