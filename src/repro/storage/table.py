"""Tables: immutable paged storage, row- or column-built.

A table's rows are generated at ~1/1000 of the paper's real cardinality;
``row_weight`` records how many real rows each generated row represents so
that CPU charges (cycles x weight) and I/O charges (bytes x weight) match
paper-scale volumes.

Pages are :class:`~repro.storage.page.ColumnPage` -- dual row/column
representation, each direction lazy.  :meth:`Table.from_columns` builds a
table *column-wise* (pages slice the column vectors; row tuples are never
materialized unless a row consumer forces them) -- the zero-copy path the
shard tier uses to hand out fact partitions.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.storage.page import Page
from repro.storage.schema import Schema

#: Generated tuples per page.  Real pages are 32 KB; this is the *batch*
#: granularity of the simulation (one generated page stands for the run of
#: real 32 KB pages holding `TUPLES_PER_PAGE * row_weight` rows).
TUPLES_PER_PAGE = 64


class Table:
    """An immutable, paged relational table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[tuple],
        row_weight: float = 1.0,
        tuples_per_page: int = TUPLES_PER_PAGE,
    ):
        if row_weight <= 0:
            raise ValueError("row_weight must be positive")
        if tuples_per_page < 1:
            raise ValueError("tuples_per_page must be >= 1")
        for row in rows[:1]:
            if len(row) != len(schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
        self.name = name
        self.schema = schema
        self.row_weight = float(row_weight)
        self.tuples_per_page = tuples_per_page
        self.pages: list[Page] = []
        self._cols: tuple[Sequence[Any], ...] | None = None
        rows = list(rows)
        for start in range(0, len(rows), tuples_per_page):
            chunk = rows[start : start + tuples_per_page]
            self.pages.append(
                Page(
                    table_name=name,
                    index=len(self.pages),
                    rows=chunk,
                    weight=self.row_weight,
                    real_bytes=len(chunk) * self.row_weight * schema.row_bytes,
                )
            )
        self.num_rows = len(rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        name: str,
        schema: Schema,
        columns: Sequence[Sequence[Any]],
        row_weight: float = 1.0,
        tuples_per_page: int = TUPLES_PER_PAGE,
    ) -> "Table":
        """Build a table from per-column vectors without materializing row
        tuples.  Pages slice the vectors (a C-level operation per column
        per page); page structure, weights and byte accounting are
        identical to the row constructor's, so simulated charges do not
        depend on which way a table was built."""
        if len(columns) != len(schema):
            raise ValueError(
                f"column count {len(columns)} does not match schema arity {len(schema)}"
            )
        table = cls.__new__(cls)
        if row_weight <= 0:
            raise ValueError("row_weight must be positive")
        if tuples_per_page < 1:
            raise ValueError("tuples_per_page must be >= 1")
        table.name = name
        table.schema = schema
        table.row_weight = float(row_weight)
        table.tuples_per_page = tuples_per_page
        table.pages = []
        n = len(columns[0]) if columns else 0
        for col in columns:
            if len(col) != n:
                raise ValueError("ragged columns")
        table._cols = tuple(columns)
        for start in range(0, n, tuples_per_page):
            end = min(start + tuples_per_page, n)
            table.pages.append(
                Page(
                    table_name=name,
                    index=len(table.pages),
                    rows=None,
                    weight=table.row_weight,
                    real_bytes=(end - start) * table.row_weight * schema.row_bytes,
                    columns=tuple(col[start:end] for col in columns),
                )
            )
        table.num_rows = n
        return table

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def real_rows(self) -> float:
        """Number of real rows this table represents."""
        return self.num_rows * self.row_weight

    @property
    def real_bytes(self) -> float:
        """Real on-disk size in bytes."""
        return sum(p.real_bytes for p in self.pages)

    def page(self, index: int) -> Page:
        return self.pages[index]

    def iter_rows(self) -> Iterator[tuple]:
        for p in self.pages:
            yield from p.rows

    def columns(self) -> tuple[Sequence[Any], ...]:
        """Full-table column vectors (concatenated page columns, cached).
        Zero-copy shard partitioning gathers from these; building them in
        the parent before forking workers ships them copy-on-write."""
        cols = self._cols
        if cols is None:
            acc: list[list[Any]] = [[] for _ in self.schema.columns]
            for page in self.pages:
                for out, col in zip(acc, page.columns):
                    out.extend(col)
            cols = self._cols = tuple(acc)
        return cols

    def warm_columns(self) -> None:
        """Materialize the column caches (table- and page-level) so forked
        workers inherit them copy-on-write instead of each rebuilding."""
        self.columns()
        for page in self.pages:
            page.columns  # noqa: B018 - property access populates the cache

    # ------------------------------------------------------------------
    def packed_columns(self) -> list[Any]:
        """The columns packed tight: ``array.array`` for numeric kinds
        (8 bytes per value, no per-element boxing), plain object lists for
        strings.  Used for the memory-footprint report; falls back to a
        list for values outside the machine-int range."""
        import array

        out: list[Any] = []
        for col_def, col in zip(self.schema.columns, self.columns()):
            if col_def.kind == "int":
                try:
                    out.append(array.array("q", col))
                    continue
                except (OverflowError, TypeError):  # pragma: no cover - huge ints
                    pass
            elif col_def.kind == "float":
                out.append(array.array("d", col))
                continue
            out.append(list(col))
        return out

    def memory_footprint(self) -> dict[str, int]:
        """Resident bytes of the two layouts: ``rows_bytes`` counts the
        per-row tuple objects plus boxed numeric elements (what a tuple
        forest keeps alive), ``columns_bytes`` counts the array-packed
        numeric columns plus object lists for strings.  String payloads
        are excluded from both (shared references either way)."""
        import sys

        numeric = tuple(c.kind in ("int", "float") for c in self.schema.columns)
        rows_bytes = 0
        for page in self.pages:
            rows = page.rows
            rows_bytes += sys.getsizeof(rows)
            for r in rows:
                rows_bytes += sys.getsizeof(r)
                for v, is_num in zip(r, numeric):
                    if is_num:
                        rows_bytes += sys.getsizeof(v)
        columns_bytes = sum(sys.getsizeof(col) for col in self.packed_columns())
        return {"rows_bytes": rows_bytes, "columns_bytes": columns_bytes}

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Table {self.name} rows={self.num_rows} (x{self.row_weight:g} real)"
            f" pages={self.num_pages}>"
        )
