"""Tests for simulated-time synchronization primitives."""

import pytest

from repro.sim import CPU, SLEEP, Channel, Condition, Gate, Lock, Simulator
from repro.sim.machine import MachineSpec


def make_sim():
    return Simulator(MachineSpec(cores=4, hz=1e9, oversub_penalty=0.0))


class TestLock:
    def test_mutual_exclusion_serializes(self):
        sim = make_sim()
        lock = Lock(sim)
        trace = []

        def worker(i):
            yield from lock.acquire()
            trace.append(("in", i, sim.now))
            yield SLEEP(1.0)
            trace.append(("out", i, sim.now))
            lock.release()

        for i in range(3):
            sim.spawn(worker(i), f"w{i}")
        sim.run()
        # Critical sections must not overlap.
        intervals = {}
        for kind, i, t in trace:
            intervals.setdefault(i, []).append(t)
        spans = sorted(intervals.values())
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-9

    def test_fifo_ordering(self):
        sim = make_sim()
        lock = Lock(sim)
        order = []

        def worker(i):
            yield SLEEP(i * 0.01)  # deterministic arrival order
            yield from lock.acquire()
            order.append(i)
            yield SLEEP(0.1)
            lock.release()

        for i in range(4):
            sim.spawn(worker(i), f"w{i}")
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_unheld_raises(self):
        sim = make_sim()
        lock = Lock(sim)
        with pytest.raises(RuntimeError):
            lock.release()

    def test_acquire_cycles_charged_as_locks(self):
        sim = make_sim()
        lock = Lock(sim, acquire_cycles=5000)

        def worker():
            yield from lock.acquire()
            lock.release()

        sim.spawn(worker(), "w")
        sim.run()
        assert sim.metrics.cpu_cycles_by_category["locks"] == 5000

    def test_contention_counter(self):
        sim = make_sim()
        lock = Lock(sim)

        def worker():
            yield from lock.acquire()
            yield SLEEP(0.5)
            lock.release()

        sim.spawn(worker(), "a")
        sim.spawn(worker(), "b")
        sim.run()
        assert lock.acquisitions == 2
        assert lock.contentions == 1


class TestCondition:
    def test_wait_notify_all(self):
        sim = make_sim()
        cond = Condition(sim)
        ready = []
        state = {"go": False}

        def waiter(i):
            while not state["go"]:
                yield from cond.wait()
            ready.append((i, sim.now))

        def notifier():
            yield SLEEP(1.0)
            state["go"] = True
            cond.notify_all()

        for i in range(3):
            sim.spawn(waiter(i), f"w{i}")
        sim.spawn(notifier(), "n")
        sim.run()
        assert sorted(i for i, _ in ready) == [0, 1, 2]
        assert all(t == pytest.approx(1.0) for _, t in ready)

    def test_notify_one_wakes_single_waiter(self):
        sim = make_sim()
        cond = Condition(sim)
        woke = []
        state = {"tokens": 0}

        def waiter(i):
            while state["tokens"] == 0:
                yield from cond.wait()
            state["tokens"] -= 1
            woke.append(i)

        def notifier():
            yield SLEEP(1.0)
            state["tokens"] = 1
            cond.notify_one()
            yield SLEEP(1.0)
            state["tokens"] = 1
            cond.notify_one()

        sim.spawn(waiter(0), "w0")
        sim.spawn(waiter(1), "w1")
        sim.spawn(notifier(), "n")
        sim.run()
        assert sorted(woke) == [0, 1]


class TestGate:
    def test_gate_blocks_until_open(self):
        sim = make_sim()
        gate = Gate(sim)
        times = []

        def waiter():
            yield from gate.wait()
            times.append(sim.now)

        def opener():
            yield SLEEP(2.0)
            gate.open()

        sim.spawn(waiter(), "w")
        sim.spawn(opener(), "o")
        sim.run()
        assert times == [pytest.approx(2.0)]

    def test_wait_on_open_gate_is_instant(self):
        sim = make_sim()
        gate = Gate(sim)
        gate.open()
        times = []

        def waiter():
            yield from gate.wait()
            times.append(sim.now)

        sim.spawn(waiter(), "w")
        sim.run()
        assert times == [0.0]


class TestChannel:
    def test_put_get_order(self):
        sim = make_sim()
        chan = Channel(sim, capacity=10)
        got = []

        def producer():
            for i in range(5):
                yield from chan.put(i)
            chan.close()

        def consumer():
            while True:
                item = yield from chan.get()
                if item is Channel.CLOSED:
                    break
                got.append(item)

        sim.spawn(producer(), "p")
        sim.spawn(consumer(), "c")
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_capacity_blocks_producer(self):
        sim = make_sim()
        chan = Channel(sim, capacity=1)
        trace = []

        def producer():
            yield from chan.put("a")
            trace.append(("put-a", sim.now))
            yield from chan.put("b")  # blocks until consumer takes "a"
            trace.append(("put-b", sim.now))
            chan.close()

        def consumer():
            yield SLEEP(1.0)
            assert (yield from chan.get()) == "a"
            assert (yield from chan.get()) == "b"
            assert (yield from chan.get()) is Channel.CLOSED

        sim.spawn(producer(), "p")
        sim.spawn(consumer(), "c")
        sim.run()
        assert trace[0] == ("put-a", 0.0)
        assert trace[1][1] == pytest.approx(1.0)

    def test_get_on_closed_empty_channel(self):
        sim = make_sim()
        chan = Channel(sim)
        chan.close()
        got = []

        def consumer():
            got.append((yield from chan.get()))

        sim.spawn(consumer(), "c")
        sim.run()
        assert got == [Channel.CLOSED]

    def test_put_on_closed_raises(self):
        sim = make_sim()
        chan = Channel(sim)
        chan.close()

        def producer():
            yield CPU(1)
            yield from chan.put(1)

        def supervisor():
            t = sim.spawn(producer(), "p")
            with pytest.raises(RuntimeError):
                yield from t.join()

        sim.spawn(supervisor(), "s")
        sim.run()

    def test_try_put(self):
        sim = make_sim()
        chan = Channel(sim, capacity=1)
        results = []

        def worker():
            yield CPU(1)
            results.append(chan.try_put("x"))
            results.append(chan.try_put("y"))

        sim.spawn(worker(), "w")

        def drainer():
            yield SLEEP(1)
            yield from chan.get()

        sim.spawn(drainer(), "d")
        sim.run()
        assert results == [True, False]

    def test_capacity_validation(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            Channel(sim, capacity=0)
