"""Paper Figure 6: push-based (FIFO) vs pull-based (SPL) Simultaneous
Pipelining on identical TPC-H Q1 queries, memory-resident SF=1.

Shape claims checked:
* CS(FIFO) is *slower* than not sharing at low concurrency (the push-based
  serialization point) -- speedup < 1;
* CS(SPL) is never worse than not sharing -- speedup >= 1 everywhere;
* at the highest concurrency, SPL reduces CS response time by a large
  factor (paper: 82-86% at 64 queries) and CS(FIFO) is stuck at ~3 cores.
"""

from repro.bench.experiments import fig6_push_vs_pull


def bench_fig6_push_vs_pull(once, save_report, full_mode):
    result = once(fig6_push_vs_pull, full=full_mode)
    save_report("fig6_push_vs_pull", result.render())

    speed_fifo = result.data["speedups"]["speedup_FIFO"]
    speed_spl = result.data["speedups"]["speedup_SPL"]
    xs = result.data["concurrency"]
    # Push-based sharing hurts at low concurrency (2..16 queries).
    low = [s for n, s in zip(xs, speed_fifo) if 2 <= n <= 16]
    assert all(s < 1.0 for s in low)
    # Pull-based sharing never hurts.
    assert all(s >= 0.97 for s in speed_spl)
    # Large reduction at the top end (paper band 82-86% at 64 queries).
    assert result.data["reduction"] > 60.0
    # CS(FIFO) bottlenecked at a few cores.
    assert result.data["cells"]["CS(FIFO)"][-1].avg_cores_used < 6.0
