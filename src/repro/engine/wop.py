"""Windows of Opportunity (WoP).

The WoP of a pivot operator relates the arrival of a new identical packet
(during the host's execution) to the fraction of the host's results it can
reuse (paper Figure 2b):

* **step** -- joins and aggregations: the new packet reuses *all* results if
  it arrives before the host's first output tuple, nothing afterwards
  (output starts near the end of the operator's work, so the cliff sits at
  ``output_start``).
* **linear** -- table scans and sorts: the new packet reuses results from
  its arrival onward and re-issues the missed prefix; for a table scan the
  re-issue *is* the circular scan wrapping around.
"""

from __future__ import annotations

import enum


class WindowOfOpportunity(enum.Enum):
    """Sharing window type of a pivot operator."""

    STEP = "step"
    LINEAR = "linear"
    NONE = "none"


#: Operator stage name -> WoP, as assigned by the paper (Section 2.2/3.3).
STAGE_WOP: dict[str, WindowOfOpportunity] = {
    "tablescan": WindowOfOpportunity.LINEAR,
    "join": WindowOfOpportunity.STEP,
    "aggregate": WindowOfOpportunity.STEP,
    "sort": WindowOfOpportunity.LINEAR,
    "cjoin": WindowOfOpportunity.STEP,
}


def wop_gain(
    wop: WindowOfOpportunity,
    arrival_progress: float,
    output_start: float = 1.0,
) -> float:
    """Fraction of the host's work the newcomer saves when it arrives at
    ``arrival_progress`` in [0, 1] of the host's execution.

    ``output_start`` is the host-progress point where the pivot operator
    emits its first output tuple (1.0 for blocking operators like a full
    aggregation; earlier for pipelining joins)."""
    if not 0.0 <= arrival_progress <= 1.0:
        raise ValueError("arrival_progress must be in [0, 1]")
    if wop is WindowOfOpportunity.NONE:
        return 0.0
    if wop is WindowOfOpportunity.STEP:
        return 1.0 if arrival_progress < output_start else 0.0
    # LINEAR: reuse from arrival to end; re-issue the missed prefix.
    return 1.0 - arrival_progress
