"""Shard failure paths: crash => retry, crash-again => structured failure,
stuck shard => timeout kill -- all without wedging the gather or the run.

Faults are injected deterministically through ``ShardConfig.fault_injection``
(``{(seq, shard): kind}``); the front end owns the schedule, so a respawned
worker never needs crash memory:

* ``"crash"``  -- the worker ``os._exit``\\ s on the first attempt only; the
  retry (fresh process, resent request) succeeds.
* ``"crash2"`` -- the worker dies on BOTH attempts; the query becomes a
  structured failure with both reasons and deadline accounting.
* ``"hang"``   -- the worker sleeps; after ``shard_timeout_s`` wall-clock
  seconds it is killed and respawned, the query fails, later queries run.
"""

from __future__ import annotations

import pytest

from repro.server.config import ServiceConfig
from repro.shard import serve_sharded

SF = 0.2
FAST = dict(duration=1.0, rate=4.0, sf=SF, workload="q32-random", arrival="uniform")
# FAST admits queries at t=0.25/0.50/0.75 => seqs 0..2 on every run.


def test_crash_midquery_is_retried_to_the_identical_answer():
    clean = serve_sharded(2, **FAST)
    report = serve_sharded(2, fault_injection={(1, 0): "crash"}, **FAST)
    m = report.metrics
    assert m.completed == 3 and m.failed == 0
    assert m.shard_retries == 1
    assert m.shard_respawns == 1
    assert m.shard_timeouts == 0
    # The retried query's answer is byte-identical to the clean run's --
    # a crash-retry must not perturb the determinism contract.
    assert report.fingerprint_lines() == clean.fingerprint_lines()
    # ... but it is not free: the respawn penalty lands on the timeline.
    assert report.metrics.latencies[1] > clean.metrics.latencies[1]


def test_second_crash_becomes_a_structured_failure_with_deadlines():
    config = ServiceConfig(queue_timeout=0.2)
    report = serve_sharded(
        2, fault_injection={(1, 0): "crash2"}, config=config, **FAST
    )
    m = report.metrics
    assert m.completed == 2 and m.failed == 1
    assert m.shard_retries == 0  # the retry did not succeed
    assert m.shard_respawns == 2  # after the first crash and the second
    assert [r.seq for r in report.results] == [0, 2]  # others unaffected
    (failure,) = m.failures
    assert failure["seq"] == 1
    assert failure["shard"] == 0
    assert failure["kind"] == "crash"
    # Both reasons survive: the original crash and the failed retry.
    assert "worker crashed" in failure["detail"]
    assert "retry also failed" in failure["detail"]
    # Deadline accounting: the record carries the admission deadline and
    # whether the failure's virtual completion blew through it.
    assert failure["deadline"] == pytest.approx(failure["arrival_time"] + 0.2)
    assert failure["virtual_completion"] > failure["arrival_time"]
    assert failure["missed_deadline"] == (
        failure["virtual_completion"] > failure["deadline"]
    )


def test_stuck_shard_times_out_without_wedging_the_gather():
    report = serve_sharded(
        2, fault_injection={(1, 1): "hang"}, shard_timeout_s=3.0, **FAST
    )
    m = report.metrics
    assert m.shard_timeouts == 1
    assert m.shard_respawns == 1
    assert m.shard_retries == 0  # timeouts are never retried
    assert m.completed == 2 and m.failed == 1
    (failure,) = m.failures
    assert failure["kind"] == "timeout"
    assert failure["seq"] == 1 and failure["shard"] == 1
    # The gather did not wedge: the LATER query still completed, served
    # by the respawned worker.
    assert [r.seq for r in report.results] == [0, 2]
    # The timeout penalty is charged on the virtual timeline.
    assert failure["virtual_completion"] - failure["arrival_time"] >= 5.0


def test_faulty_and_clean_runs_drain_cleanly():
    for faults in ({(1, 0): "crash"}, {(1, 0): "crash2"}):
        m = serve_sharded(2, fault_injection=faults, **FAST).metrics
        assert m.completed + m.failed + m.timed_out == m.admitted
        assert m.in_system == m.failed  # failed queries left the system too
