#!/usr/bin/env python
"""Perf-trajectory collation: every committed ``BENCH_*.json`` in one table.

Each optimization PR commits its own benchmark artifact (wall-clock A/B
rows, shard-scaling curves, adaptive-ordering speedups, ...) with its own
shape.  This harness reads them all and flattens the headline numbers into
one diffable result table -- the offline result-table pattern from
``MBradbury__slp`` noted in ROADMAP.md -- so PR-over-PR speedups show up
as one-line diffs of ``BENCH_trajectory.json`` instead of requiring a
per-artifact archaeology pass.

Rows are ``(artifact, row, metric, value)`` sorted lexicographically; the
collation derives everything from the committed artifacts (no simulation,
no wall clock), so regenerating it is free and byte-stable until an input
artifact changes.

Usage::

    python benchmarks/trajectory.py            # collate + write artifact
    python benchmarks/trajectory.py --check    # verify committed file is current
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import format_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_trajectory.json"


def _row(artifact: str, row: str, metric: str, value) -> dict:
    if isinstance(value, float):
        value = round(value, 4)
    return {"artifact": artifact, "row": row, "metric": metric, "value": value}


def _collate_wallclock(doc: dict) -> list[dict]:
    rows = []
    for name, eng in sorted(doc.get("engines", {}).items()):
        rows.append(_row("wallclock", name, "speedup", eng["speedup"]))
        rows.append(_row("wallclock", name, "before_s", eng["before_s"]))
        rows.append(_row("wallclock", name, "after_s", eng["after_s"]))
        resident = eng.get("bytes_resident")
        if resident:
            rows.append(
                _row("wallclock", name, "bytes_packed_vs_boxed",
                     resident["packed_vs_boxed"])
            )
    for name, exp in sorted(doc.get("experiments", {}).items()):
        rows.append(_row("wallclock", name, "speedup", exp["speedup"]))
    mem = doc.get("memory", {})
    for metric in ("columns_vs_rows", "packed_vs_boxed"):
        if metric in mem:
            rows.append(_row("wallclock", "memory", metric, mem[metric]))
    return rows


def _collate_shard_scaling(doc: dict) -> list[dict]:
    rows = []
    for shards, speedup in sorted(
        doc.get("speedup", {}).items(), key=lambda kv: int(kv[0])
    ):
        rows.append(_row("shard_scaling", f"{shards} shards", "speedup", speedup))
    points = doc.get("points", {})
    if points:
        widest = max(points, key=int)
        point = points[widest]
        rows.append(
            _row("shard_scaling", f"{widest} shards", "throughput_qps",
                 point["throughput_qps"])
        )
        if "prewarm_scatter_s" in point:
            rows.append(
                _row("shard_scaling", f"{widest} shards", "prewarm_scatter_s",
                     point["prewarm_scatter_s"])
            )
    return rows


def _collate_arrangements(doc: dict) -> list[dict]:
    rows = [
        _row("arrangements", key, "speedup", value)
        for key, value in sorted(doc.get("speedup", {}).items())
    ]
    points = doc.get("points", {})
    if points:
        widest = max(c.get("mpl", 0) for c in points.values())
        for key, cell in sorted(points.items()):
            if cell.get("mpl") == widest:
                rows.append(_row("arrangements", key, "arrange_hits", cell.get("hits")))
                rows.append(_row("arrangements", key, "arrange_builds", cell.get("builds")))
    return rows


def _collate_folding(doc: dict) -> list[dict]:
    rows = []
    for overlap, cell in sorted(doc.get("sweep", {}).items()):
        rows.append(_row("folding", f"overlap {overlap}", "p95_ratio",
                         cell["ratio"]))
    best = max(doc.get("sweep", {}).values(),
               key=lambda c: c["ratio"], default=None)
    if best is not None:
        folds = sum(
            v for k, v in best.get("fold_counters", {}).items()
            if k.startswith(("fold_attach:", "fold_cache_hit:"))
        )
        rows.append(_row("folding", "best overlap", "fold_attaches", folds))
        rows.append(_row("folding", "best overlap", "cache_fold_hits",
                         best.get("cache_fold_hits", 0)))
    return rows


def _collate_gqp_ordering(doc: dict) -> list[dict]:
    return [
        _row("gqp_ordering", key.removeprefix("speedup_"), "speedup", value)
        for key, value in sorted(doc.items())
        if key.startswith("speedup_")
    ]


#: One collator per known artifact stem; unknown BENCH_*.json files get a
#: generic pass that lifts any top-level numeric "speedup*" keys, so a new
#: benchmark appears in the trajectory before anyone teaches this file its
#: shape.
COLLATORS = {
    "BENCH_arrangements": _collate_arrangements,
    "BENCH_wallclock": _collate_wallclock,
    "BENCH_shard_scaling": _collate_shard_scaling,
    "BENCH_gqp_ordering": _collate_gqp_ordering,
    "BENCH_folding": _collate_folding,
}


def _collate_generic(stem: str, doc: dict) -> list[dict]:
    rows = []
    if not isinstance(doc, dict):
        return rows
    for key, value in sorted(doc.items()):
        if key.startswith("speedup") and isinstance(value, (int, float)):
            rows.append(_row(stem, key, "speedup", value))
        elif key.startswith("speedup") and isinstance(value, dict):
            for sub, v in sorted(value.items()):
                if isinstance(v, (int, float)):
                    rows.append(_row(stem, sub, key, v))
    return rows


def collate(root: pathlib.Path = ROOT) -> dict:
    """Read every ``BENCH_*.json`` under ``root`` (except the trajectory
    itself) and flatten headline numbers into one sorted row list."""
    rows: list[dict] = []
    sources = []
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == OUT_PATH.name:
            continue
        doc = json.loads(path.read_text())
        stem = path.stem
        collator = COLLATORS.get(stem)
        if collator is not None:
            rows.extend(collator(doc))
        else:
            rows.extend(_collate_generic(stem.removeprefix("BENCH_"), doc))
        sources.append(path.name)
    rows.sort(key=lambda r: (r["artifact"], r["row"], r["metric"]))
    return {"sources": sources, "rows": rows}


def render(trajectory: dict) -> str:
    return format_table(
        "perf trajectory: headline rows from every committed BENCH_*.json",
        ["artifact", "row", "metric", "value"],
        [[r["artifact"], r["row"], r["metric"], r["value"]]
         for r in trajectory["rows"]],
        note=f"sources: {', '.join(trajectory['sources'])}",
    )


def _dump(trajectory: dict) -> str:
    return json.dumps(trajectory, indent=1, sort_keys=True) + "\n"


def bench_trajectory(once, save_report, full_mode):
    """pytest-benchmark entry point (see conftest.py): collation only."""
    trajectory = once(collate)
    save_report("trajectory", render(trajectory))
    assert trajectory["rows"], "no BENCH_*.json artifacts found to collate"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--check", action="store_true",
                        help="fail if the committed artifact is stale")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH,
                        help=f"artifact path (default {OUT_PATH.name} at repo root)")
    args = parser.parse_args(argv)

    trajectory = collate()
    print(render(trajectory))
    if not trajectory["rows"]:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    if args.check:
        committed = args.out.read_text() if args.out.exists() else ""
        if committed != _dump(trajectory):
            print(f"{args.out.name} is stale; rerun benchmarks/trajectory.py",
                  file=sys.stderr)
            return 1
        print(f"{args.out.name} is current")
        return 0
    args.out.write_text(_dump(trajectory))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
