"""Unit and property tests for Shared Pages Lists."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.exchange import END
from repro.engine.spl import SharedPagesList, SplExchange
from repro.sim import Simulator
from repro.sim.costmodel import CostModel
from repro.sim.machine import MachineSpec
from repro.storage.page import Batch


def make_sim():
    return Simulator(MachineSpec(cores=8, hz=1e9, oversub_penalty=0.0))


def batch(i):
    return Batch([(i,)], weight=1.0)


class TestBasics:
    def test_single_producer_single_consumer(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        consumer = spl.register()
        got = []

        def producer():
            for i in range(10):
                yield from spl.emit(batch(i))
            spl.close()

        def reader():
            while True:
                b = yield from consumer.read()
                if b is END:
                    break
                got.append(b.rows[0][0])

        sim.spawn(producer(), "p")
        sim.spawn(reader(), "c")
        sim.run()
        assert got == list(range(10))

    def test_multiple_consumers_see_all_pages(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        consumers = [spl.register() for _ in range(5)]
        seen = {i: [] for i in range(5)}

        def producer():
            for i in range(20):
                yield from spl.emit(batch(i))
            spl.close()

        def reader(k, c):
            while True:
                b = yield from c.read()
                if b is END:
                    break
                seen[k].append(b.rows[0][0])

        sim.spawn(producer(), "p")
        for k, c in enumerate(consumers):
            sim.spawn(reader(k, c), f"c{k}")
        sim.run()
        for k in range(5):
            assert seen[k] == list(range(20))

    def test_max_size_bounds_retained_pages(self):
        """The producer must block when the list reaches its bound; the
        retained size never exceeds max_pages."""
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=3)
        consumer = spl.register()
        max_seen = []

        def producer():
            for i in range(30):
                yield from spl.emit(batch(i))
                max_seen.append(spl.size)
            spl.close()

        def slow_reader():
            from repro.sim.commands import SLEEP

            while True:
                yield SLEEP(0.01)
                b = yield from consumer.read()
                if b is END:
                    break

        sim.spawn(producer(), "p")
        sim.spawn(slow_reader(), "c")
        sim.run()
        assert max(max_seen) <= 3

    def test_last_consumer_deletes_page(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=8)
        c1, c2 = spl.register(), spl.register()

        def producer():
            yield from spl.emit(batch(0))
            spl.close()

        def read_one(c, out):
            b = yield from c.read()
            out.append(b)

        out1, out2 = [], []
        sim.spawn(producer(), "p")
        sim.spawn(read_one(c1, out1), "c1")
        sim.spawn(read_one(c2, out2), "c2")
        sim.run()
        assert spl.size == 0  # deleted after the second reader
        assert out1[0].rows == out2[0].rows

    def test_pages_with_no_consumers_are_dropped(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=2)

        def producer():
            for i in range(10):  # nobody registered: must not block
                yield from spl.emit(batch(i))
            spl.close()

        sim.spawn(producer(), "p")
        sim.run()
        assert spl.size == 0

    def test_emit_after_close_rejected(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=2)
        spl.close()

        def producer():
            yield from spl.emit(batch(0))

        def supervisor():
            t = sim.spawn(producer(), "p")
            with pytest.raises(RuntimeError):
                yield from t.join()

        sim.spawn(supervisor(), "s")
        sim.run()

    def test_invalid_max_pages(self):
        with pytest.raises(ValueError):
            SharedPagesList(make_sim(), CostModel(), max_pages=0)


class TestLinearWop:
    """Points of entry and finishing packets (paper Section 4.2)."""

    def test_budgeted_consumer_gets_exactly_budget_pages(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        consumer = spl.register(budget=5)
        got = []

        def producer():
            i = 0
            while spl.active_consumers:
                yield from spl.emit(batch(i))
                i += 1
            spl.close()

        def reader():
            while True:
                b = yield from consumer.read()
                if b is END:
                    break
                got.append(b.rows[0][0])

        sim.spawn(producer(), "p")
        sim.spawn(reader(), "c")
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_point_of_entry_mid_stream(self):
        """A consumer joining mid-scan sees pages from its entry point on --
        a circular scan then wraps to complete its table."""
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        first = spl.register(budget=6)
        got_first, got_late = [], []
        late_holder = {}

        def producer():
            i = 0
            while spl.active_consumers:
                if i == 3:
                    late_holder["c"] = spl.register(budget=6)
                    sim.spawn(reader(late_holder["c"], got_late), "late")
                yield from spl.emit(batch(i % 6))  # 6-page circular table
                i += 1
            spl.close()

        def reader(c, out):
            while True:
                b = yield from c.read()
                if b is END:
                    break
                out.append(b.rows[0][0])

        sim.spawn(producer(), "p")
        sim.spawn(reader(first, got_first), "first")
        sim.run()
        assert got_first == [0, 1, 2, 3, 4, 5]
        # The late consumer entered at page 3 and wrapped around the circle.
        assert got_late == [3, 4, 5, 0, 1, 2]
        assert sorted(got_late) == [0, 1, 2, 3, 4, 5]

    def test_zero_budget_consumer_reads_nothing(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        c = spl.register(budget=0)
        got = []

        def producer():
            yield from spl.emit(batch(1))
            spl.close()

        def reader():
            got.append((yield from c.read()))

        sim.spawn(producer(), "p")
        sim.spawn(reader(), "c")
        sim.run()
        assert got == [END]

    def test_consumer_after_close_sees_end(self):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        spl.close()
        c = spl.register()
        got = []

        def reader():
            got.append((yield from c.read()))

        sim.spawn(reader(), "c")
        sim.run()
        assert got == [END]


class TestSplExchange:
    def test_open_reader_on_closed_exchange(self):
        sim = make_sim()
        ex = SplExchange(sim, CostModel(), 4, "x")
        ex.close()
        with pytest.raises(RuntimeError):
            ex.open_reader()

    def test_lock_cycles_accounted(self):
        sim = make_sim()
        cost = CostModel()
        ex = SplExchange(sim, cost, 4, "x")
        reader = ex.open_reader()

        def producer():
            yield from ex.emit(batch(0))
            ex.close()

        def consumer():
            while (yield from reader.read()) is not END:
                pass

        sim.spawn(producer(), "p")
        sim.spawn(consumer(), "c")
        sim.run()
        assert sim.metrics.cpu_cycles_by_category["locks"] > 0


class TestSplProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_pages=st.integers(1, 40),
        n_consumers=st.integers(1, 6),
        max_pages=st.integers(1, 8),
    )
    def test_every_consumer_sees_every_page_in_order(self, n_pages, n_consumers, max_pages):
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=max_pages)
        consumers = [spl.register() for _ in range(n_consumers)]
        seen = [[] for _ in range(n_consumers)]

        def producer():
            for i in range(n_pages):
                yield from spl.emit(batch(i))
            spl.close()

        def reader(k):
            while True:
                b = yield from consumers[k].read()
                if b is END:
                    break
                seen[k].append(b.rows[0][0])

        sim.spawn(producer(), "p")
        for k in range(n_consumers):
            sim.spawn(reader(k), f"c{k}")
        sim.run()
        for k in range(n_consumers):
            assert seen[k] == list(range(n_pages))
        assert spl.size == 0

    @settings(max_examples=30, deadline=None)
    @given(
        budgets=st.lists(st.integers(1, 12), min_size=1, max_size=5),
        table_pages=st.integers(1, 12),
    )
    def test_budgeted_consumers_drain_and_producer_stops(self, budgets, table_pages):
        """Circular-scan invariant: with budgeted consumers the driver loop
        terminates exactly when all budgets are exhausted."""
        sim = make_sim()
        spl = SharedPagesList(sim, CostModel(), max_pages=4)
        consumers = [spl.register(budget=b) for b in budgets]
        counts = [0] * len(budgets)
        emitted = []

        def producer():
            i = 0
            while spl.active_consumers:
                yield from spl.emit(batch(i % table_pages))
                emitted.append(i)
                i += 1
            spl.close()

        def reader(k):
            while True:
                b = yield from consumers[k].read()
                if b is END:
                    break
                counts[k] += 1

        sim.spawn(producer(), "p")
        for k in range(len(budgets)):
            sim.spawn(reader(k), f"c{k}")
        sim.run()
        assert counts == budgets
        assert len(emitted) == max(budgets)
