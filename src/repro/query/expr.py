"""Scalar expressions over rows.

Expressions are small immutable ASTs with four capabilities:

* ``compile(schema)`` -- build a fast ``row -> value`` closure (predicates
  are evaluated millions of times; attribute lookups are hoisted out);
* ``compile_batch(schema)`` -- build a *batch kernel* evaluating the
  predicate over a whole sequence of rows in one call (see below);
* ``signature`` -- a canonical, hashable encoding used for common-sub-plan
  detection (two predicates share iff their signatures are equal);
* ``terms`` -- the number of primitive comparisons, used by the cost model
  to charge predicate-evaluation cycles.

Batch kernels
-------------
``compile_batch(schema)`` returns ``rows -> list of passing rows``;
``compile_batch(schema, indices=True)`` returns ``rows -> list of passing
indices`` (for callers that filter parallel lists, e.g. CJOIN's
distributor).  The hot shapes -- single-column comparison against a
constant, inclusive range, set membership, and conjunctions of those --
compile to a single list comprehension with the column index and constants
hoisted into the closure, amortizing the per-row interpretation cost the
same way vectorized engines amortize per-tuple interpretation over blocks.
Every other shape falls back to wrapping the row closure, so the kernel is
*always* semantically identical to filtering with ``compile``: it selects
exactly the same rows in the same order (tests/query/test_batch_kernels.py
holds every shape to that).

Column kernels
--------------
``compile_cols(schema)`` is the columnar-page counterpart: it returns a
kernel ``(col_of, n, sel=None) -> passing positions`` that evaluates the
predicate directly over column vectors -- ``col_of(i)`` yields logical
column ``i`` of a batch, ``sel`` restricts evaluation to a previous pass's
survivors (conjunctions cascade selection vectors instead of rebuilding
rows).  The pass positions equal the positions row-wise evaluation would
keep, in the same order (the property suite in ``tests/storage`` holds
arbitrary schemas/predicates to that).  Shapes without a column form
return ``None`` and the caller falls back to the row kernel.

When a column arrives dictionary-encoded (``packed_storage`` fast path,
see :mod:`repro.storage.packed`), the leaf kernels switch to
predicate-on-dictionary evaluation: the predicate is applied once per
*distinct value* into a 256-byte pass table memoized on the shared
``Dictionary`` by the predicate's signature, then a full page filters
with one C-level ``codes.translate`` + ``itertools.compress`` pass and a
refinement pass indexes codes only.  Survivor positions and order are
unchanged, so this is invisible to simulated results.

Mask kernels
------------
``compile_mask(schema)`` returns ``(col_of, n) -> int bitmap | None``:
the predicate's live mask over a full batch, built from per-column
predicate bitmaps memoized on dictionary columns (``mask_for``).
Conjunction/disjunction/negation become single-int ``&``/``|``/``^``
operations, which also gives ``Or``/``Not`` a columnar form.  A kernel
returns ``None`` at call time when some referenced column is not
dictionary-encoded; callers then fall back to ``compile_cols`` /
``compile_batch``.  Masks select exactly the positions row-wise
evaluation keeps.

The module also hosts the shared schema->column-index helpers
(:func:`column_indices`, :func:`row_key_fn`, :func:`value_column`) that
the aggregation stage, the CJOIN distributor and the consumer-side inputs
previously each rebuilt by hand."""

from __future__ import annotations

import operator
from itertools import compress
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.storage.packed import DictColumn

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.schema import Schema

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    ">": operator.gt,
}

_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

# Batch-kernel factories for single-column comparisons against a constant:
# the comparison is inlined in the comprehension (no per-row function call).
_BATCH_CMP_ROWS: dict[str, Callable[[int, Any], Callable]] = {
    "<": lambda i, v: lambda rows: [r for r in rows if r[i] < v],
    "<=": lambda i, v: lambda rows: [r for r in rows if r[i] <= v],
    "=": lambda i, v: lambda rows: [r for r in rows if r[i] == v],
    "!=": lambda i, v: lambda rows: [r for r in rows if r[i] != v],
    ">=": lambda i, v: lambda rows: [r for r in rows if r[i] >= v],
    ">": lambda i, v: lambda rows: [r for r in rows if r[i] > v],
}

_BATCH_CMP_IDX: dict[str, Callable[[int, Any], Callable]] = {
    "<": lambda i, v: lambda rows: [j for j, r in enumerate(rows) if r[i] < v],
    "<=": lambda i, v: lambda rows: [j for j, r in enumerate(rows) if r[i] <= v],
    "=": lambda i, v: lambda rows: [j for j, r in enumerate(rows) if r[i] == v],
    "!=": lambda i, v: lambda rows: [j for j, r in enumerate(rows) if r[i] != v],
    ">=": lambda i, v: lambda rows: [j for j, r in enumerate(rows) if r[i] >= v],
    ">": lambda i, v: lambda rows: [j for j, r in enumerate(rows) if r[i] > v],
}

# Column-kernel factories: evaluate over a column vector and return pass
# positions.  One pair per operator -- a full-column scan (enumerate) and a
# selection-vector refinement (indexing into the column).
_COL_CMP_FULL: dict[str, Callable[[Any], Callable]] = {
    "<": lambda v: lambda c: [j for j, x in enumerate(c) if x < v],
    "<=": lambda v: lambda c: [j for j, x in enumerate(c) if x <= v],
    "=": lambda v: lambda c: [j for j, x in enumerate(c) if x == v],
    "!=": lambda v: lambda c: [j for j, x in enumerate(c) if x != v],
    ">=": lambda v: lambda c: [j for j, x in enumerate(c) if x >= v],
    ">": lambda v: lambda c: [j for j, x in enumerate(c) if x > v],
}

_COL_CMP_SEL: dict[str, Callable[[Any], Callable]] = {
    "<": lambda v: lambda c, sel: [j for j in sel if c[j] < v],
    "<=": lambda v: lambda c, sel: [j for j in sel if c[j] <= v],
    "=": lambda v: lambda c, sel: [j for j in sel if c[j] == v],
    "!=": lambda v: lambda c, sel: [j for j in sel if c[j] != v],
    ">=": lambda v: lambda c, sel: [j for j in sel if c[j] >= v],
    ">": lambda v: lambda c, sel: [j for j in sel if c[j] > v],
}


def _col_kernel(
    i: int, full: Callable, refine: Callable, key: Any, value_pred: Callable
) -> Callable:
    """Assemble a column kernel from a full-scan and a refinement pass.

    ``key`` (the predicate's signature) and ``value_pred`` (a plain
    ``value -> bool`` closure) power the dictionary fast path: when the
    column arrives dictionary-encoded, the predicate is folded into a
    pass table once per (table, predicate) and pages filter on raw code
    bytes -- same survivors, same order."""

    def kernel(col_of: Callable, n: int, sel=None) -> list:
        c = col_of(i)
        if type(c) is DictColumn:
            table = c.dictionary.pass_table(key, value_pred)
            codes = c.codes
            if sel is None:
                return list(compress(range(n), codes.translate(table)))
            return [j for j in sel if table[codes[j]]]
        return full(c) if sel is None else refine(c, sel)

    return kernel


def _mask_kernel(i: int, key: Any, value_pred: Callable) -> Callable:
    """A leaf mask kernel: the predicate's bitmap over a full batch,
    memoized per dictionary column by predicate signature.  Returns
    ``None`` at call time for non-dictionary columns (caller falls back
    to selection-vector kernels)."""

    def kernel(col_of: Callable, n: int) -> int | None:
        c = col_of(i)
        if type(c) is DictColumn:
            return c.mask_for(key, value_pred)
        return None

    return kernel


# ----------------------------------------------------------------------
# Shared schema->column-index resolution (one home for the itemgetter
# construction the stages used to repeat).
# ----------------------------------------------------------------------
def column_indices(schema: "Schema", names: Sequence[str]) -> tuple[int, ...]:
    """Tuple positions of ``names`` in ``schema`` (in the given order)."""
    return tuple(schema.index(n) for n in names)


def row_key_fn(indices: Sequence[int]) -> Callable[[tuple], tuple]:
    """A ``row -> key tuple`` extractor for the given column positions.

    Keys are always tuples -- including the one-column case (callers
    concatenate them into output rows) and the empty grouping (a single
    global group) -- and multi-column extraction is a single C-level
    ``itemgetter`` call."""
    if len(indices) > 1:
        return operator.itemgetter(*indices)
    if indices:
        i = indices[0]
        return lambda r, _i=i: (r[_i],)
    return lambda r: ()


def value_column(expr: "Expr", schema: "Schema", column_of: Callable, n: int):
    """Evaluate ``expr`` as one column vector over a columnar batch.

    ``column_of(i)`` yields logical column ``i`` (position-aligned).
    Returns ``None`` when the shape has no column form (caller falls back
    to row-wise evaluation); otherwise the result equals
    ``[expr.compile(schema)(r) for r in rows]`` element for element."""
    if isinstance(expr, Col):
        return column_of(schema.index(expr.name))
    if isinstance(expr, Const):
        return [expr.value] * n
    if isinstance(expr, Arith):
        lhs = value_column(expr.left, schema, column_of, n)
        if lhs is None:
            return None
        rhs = value_column(expr.right, schema, column_of, n)
        if rhs is None:
            return None
        return list(map(_ARITH_OPS[expr.op], lhs, rhs))
    return None


class Expr:
    """Base class for scalar expressions."""

    __slots__ = ()

    def compile(self, schema: "Schema") -> Callable[[tuple], Any]:
        raise NotImplementedError

    def compile_batch(
        self, schema: "Schema", indices: bool = False
    ) -> Callable[[Sequence[tuple]], list]:
        """Batch selection kernel (see module docstring).

        Generic fallback: wrap the row closure.  Subclasses with a hot
        shape override this with a fused one-pass comprehension."""
        pred = self.compile(schema)
        if indices:
            return lambda rows: [i for i, r in enumerate(rows) if pred(r)]
        return lambda rows: [r for r in rows if pred(r)]

    def compile_cols(self, schema: "Schema") -> Callable | None:
        """Column selection kernel (see module docstring), or ``None`` when
        this shape has no column form and the caller must fall back to the
        row kernel."""
        return None

    def compile_mask(self, schema: "Schema") -> Callable | None:
        """Mask kernel ``(col_of, n) -> int bitmap | None`` (see module
        docstring), or ``None`` when this shape has no mask form.  The
        kernel itself returns ``None`` at call time when a referenced
        column is not dictionary-encoded."""
        return None

    @property
    def signature(self) -> tuple:
        raise NotImplementedError

    @property
    def terms(self) -> int:
        """Number of primitive predicate terms (for cost charging)."""
        return 1

    def columns(self) -> frozenset[str]:
        raise NotImplementedError

    # Equality/hash by signature: predicates compare structurally.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.signature == other.signature

    def __hash__(self) -> int:
        return hash(self.signature)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}{self.signature!r}"


class Col(Expr):
    """A column reference."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def compile(self, schema: "Schema") -> Callable[[tuple], Any]:
        # itemgetter is a single C-level call per row (no frame push).
        return operator.itemgetter(schema.index(self.name))

    @property
    def signature(self) -> tuple:
        return ("col", self.name)

    @property
    def terms(self) -> int:
        return 0

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))


class Const(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def compile(self, schema: "Schema") -> Callable[[tuple], Any]:
        v = self.value
        return lambda row: v

    @property
    def signature(self) -> tuple:
        return ("const", self.value)

    @property
    def terms(self) -> int:
        return 0

    def columns(self) -> frozenset[str]:
        return frozenset()


class Cmp(Expr):
    """Binary comparison ``left <op> right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr | str, right: Expr | Any):
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = Col(left) if isinstance(left, str) else left
        self.right = right if isinstance(right, Expr) else Const(right)

    def compile(self, schema: "Schema") -> Callable[[tuple], bool]:
        f = _CMP_OPS[self.op]
        lhs = self.left.compile(schema)
        rhs = self.right.compile(schema)
        return lambda row: f(lhs(row), rhs(row))

    def compile_batch(
        self, schema: "Schema", indices: bool = False
    ) -> Callable[[Sequence[tuple]], list]:
        if isinstance(self.left, Col) and isinstance(self.right, Const):
            factory = (_BATCH_CMP_IDX if indices else _BATCH_CMP_ROWS)[self.op]
            return factory(schema.index(self.left.name), self.right.value)
        return super().compile_batch(schema, indices)

    def _value_pred(self) -> Callable[[Any], bool]:
        f = _CMP_OPS[self.op]
        v = self.right.value  # type: ignore[union-attr]
        return lambda x: f(x, v)

    def compile_cols(self, schema: "Schema") -> Callable | None:
        if isinstance(self.left, Col) and isinstance(self.right, Const):
            v = self.right.value
            return _col_kernel(
                schema.index(self.left.name),
                _COL_CMP_FULL[self.op](v),
                _COL_CMP_SEL[self.op](v),
                self.signature,
                self._value_pred(),
            )
        return None

    def compile_mask(self, schema: "Schema") -> Callable | None:
        if isinstance(self.left, Col) and isinstance(self.right, Const):
            return _mask_kernel(
                schema.index(self.left.name), self.signature, self._value_pred()
            )
        return None

    @property
    def signature(self) -> tuple:
        return ("cmp", self.op, self.left.signature, self.right.signature)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()


class Between(Expr):
    """Inclusive range predicate ``lo <= col <= hi``."""

    __slots__ = ("col", "lo", "hi")

    def __init__(self, col: str, lo: Any, hi: Any):
        self.col = col
        self.lo = lo
        self.hi = hi

    def compile(self, schema: "Schema") -> Callable[[tuple], bool]:
        i = schema.index(self.col)
        lo, hi = self.lo, self.hi
        return lambda row: lo <= row[i] <= hi

    def compile_batch(
        self, schema: "Schema", indices: bool = False
    ) -> Callable[[Sequence[tuple]], list]:
        i = schema.index(self.col)
        lo, hi = self.lo, self.hi
        if indices:
            return lambda rows: [j for j, r in enumerate(rows) if lo <= r[i] <= hi]
        return lambda rows: [r for r in rows if lo <= r[i] <= hi]

    def compile_cols(self, schema: "Schema") -> Callable | None:
        lo, hi = self.lo, self.hi
        return _col_kernel(
            schema.index(self.col),
            lambda c: [j for j, x in enumerate(c) if lo <= x <= hi],
            lambda c, sel: [j for j in sel if lo <= c[j] <= hi],
            self.signature,
            lambda x: lo <= x <= hi,
        )

    def compile_mask(self, schema: "Schema") -> Callable | None:
        lo, hi = self.lo, self.hi
        return _mask_kernel(
            schema.index(self.col), self.signature, lambda x: lo <= x <= hi
        )

    @property
    def signature(self) -> tuple:
        return ("between", self.col, self.lo, self.hi)

    @property
    def terms(self) -> int:
        return 2

    def columns(self) -> frozenset[str]:
        return frozenset((self.col,))


class InSet(Expr):
    """Membership predicate ``col IN (v1, v2, ...)`` -- the disjunctions of
    nation/city options used by the paper's selectivity experiments."""

    __slots__ = ("col", "values")

    def __init__(self, col: str, values: Sequence[Any]):
        if not values:
            raise ValueError("InSet needs at least one value")
        self.col = col
        self.values = tuple(sorted(set(values), key=repr))

    def compile(self, schema: "Schema") -> Callable[[tuple], bool]:
        i = schema.index(self.col)
        vals = frozenset(self.values)
        return lambda row: row[i] in vals

    def compile_batch(
        self, schema: "Schema", indices: bool = False
    ) -> Callable[[Sequence[tuple]], list]:
        i = schema.index(self.col)
        vals = frozenset(self.values)
        if indices:
            return lambda rows: [j for j, r in enumerate(rows) if r[i] in vals]
        return lambda rows: [r for r in rows if r[i] in vals]

    def compile_cols(self, schema: "Schema") -> Callable | None:
        vals = frozenset(self.values)
        return _col_kernel(
            schema.index(self.col),
            lambda c: [j for j, x in enumerate(c) if x in vals],
            lambda c, sel: [j for j in sel if c[j] in vals],
            self.signature,
            lambda x: x in vals,
        )

    def compile_mask(self, schema: "Schema") -> Callable | None:
        vals = frozenset(self.values)
        return _mask_kernel(schema.index(self.col), self.signature, lambda x: x in vals)

    @property
    def signature(self) -> tuple:
        return ("in", self.col, self.values)

    @property
    def terms(self) -> int:
        return 1  # a hashed IN probe costs about one comparison

    def columns(self) -> frozenset[str]:
        return frozenset((self.col,))


class And(Expr):
    """Conjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Expr):
        if not parts:
            raise ValueError("And needs at least one part")
        self.parts = tuple(parts)

    def compile(self, schema: "Schema") -> Callable[[tuple], bool]:
        fns = [p.compile(schema) for p in self.parts]
        if len(fns) == 1:
            return fns[0]
        return lambda row: all(f(row) for f in fns)

    def compile_batch(
        self, schema: "Schema", indices: bool = False
    ) -> Callable[[Sequence[tuple]], list]:
        """Conjunction kernel: cascade the parts' kernels, each pass
        filtering the survivors of the previous one (selection order is
        preserved, so the result equals row-at-a-time evaluation)."""
        if len(self.parts) == 1:
            return self.parts[0].compile_batch(schema, indices)
        kernels = [p.compile_batch(schema) for p in self.parts]
        if not indices:
            def filter_rows(rows: Sequence[tuple]) -> list:
                out = rows
                for k in kernels:
                    if not out:
                        break
                    out = k(out)
                return out if isinstance(out, list) else list(out)

            return filter_rows

        first = self.parts[0].compile_batch(schema, indices=True)
        rest = [p.compile(schema) for p in self.parts[1:]]

        def filter_indices(rows: Sequence[tuple]) -> list:
            sel = first(rows)
            for pred in rest:
                if not sel:
                    break
                sel = [j for j in sel if pred(rows[j])]
            return sel

        return filter_indices

    def compile_cols(self, schema: "Schema") -> Callable | None:
        """Conjunction column kernel: each part refines the previous pass's
        selection vector (same survivors, same order as row-wise)."""
        kernels = [p.compile_cols(schema) for p in self.parts]
        if any(k is None for k in kernels):
            return None
        if len(kernels) == 1:
            return kernels[0]

        def kernel(col_of: Callable, n: int, sel=None) -> list:
            for k in kernels:
                sel = k(col_of, n, sel)
                if not sel:
                    return sel
            return sel

        return kernel

    def compile_mask(self, schema: "Schema") -> Callable | None:
        """Conjunction mask kernel: AND the parts' memoized bitmaps --
        one int ``&`` per part instead of a selection cascade."""
        kernels = [p.compile_mask(schema) for p in self.parts]
        if any(k is None for k in kernels):
            return None
        if len(kernels) == 1:
            return kernels[0]

        def kernel(col_of: Callable, n: int) -> int | None:
            m = kernels[0](col_of, n)
            if m is None:
                return None
            for k in kernels[1:]:
                if not m:
                    return 0
                part = k(col_of, n)
                if part is None:
                    return None
                m &= part
            return m

        return kernel

    @property
    def signature(self) -> tuple:
        # Canonical conjunct order: conjunction is commutative, so the
        # signature sorts part signatures (by repr -- part tuples mix value
        # types) to make ``a>1 AND b<2`` and ``b<2 AND a>1`` hash identically.
        # Evaluation order still follows author order (``compile*`` above).
        return ("and",) + tuple(sorted((p.signature for p in self.parts), key=repr))

    @property
    def terms(self) -> int:
        return sum(p.terms for p in self.parts)

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out


class Or(Expr):
    """Disjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Expr):
        if not parts:
            raise ValueError("Or needs at least one part")
        self.parts = tuple(parts)

    def compile(self, schema: "Schema") -> Callable[[tuple], bool]:
        fns = [p.compile(schema) for p in self.parts]
        if len(fns) == 1:
            return fns[0]
        return lambda row: any(f(row) for f in fns)

    def compile_mask(self, schema: "Schema") -> Callable | None:
        """Disjunction mask kernel: OR the parts' memoized bitmaps --
        the first columnar form disjunctions have had."""
        kernels = [p.compile_mask(schema) for p in self.parts]
        if any(k is None for k in kernels):
            return None
        if len(kernels) == 1:
            return kernels[0]

        def kernel(col_of: Callable, n: int) -> int | None:
            m = 0
            for k in kernels:
                part = k(col_of, n)
                if part is None:
                    return None
                m |= part
            return m

        return kernel

    @property
    def signature(self) -> tuple:
        return ("or",) + tuple(p.signature for p in self.parts)

    @property
    def terms(self) -> int:
        return sum(p.terms for p in self.parts)

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out


class Not(Expr):
    """Negation."""

    __slots__ = ("part",)

    def __init__(self, part: Expr):
        self.part = part

    def compile(self, schema: "Schema") -> Callable[[tuple], bool]:
        f = self.part.compile(schema)
        return lambda row: not f(row)

    def compile_mask(self, schema: "Schema") -> Callable | None:
        """Negation mask kernel: complement within the batch's n bits."""
        inner = self.part.compile_mask(schema)
        if inner is None:
            return None

        def kernel(col_of: Callable, n: int) -> int | None:
            m = inner(col_of, n)
            if m is None:
                return None
            return ((1 << n) - 1) ^ m

        return kernel

    @property
    def signature(self) -> tuple:
        return ("not", self.part.signature)

    @property
    def terms(self) -> int:
        return self.part.terms

    def columns(self) -> frozenset[str]:
        return self.part.columns()


class Arith(Expr):
    """Binary arithmetic, e.g. ``l_extendedprice * l_discount`` in Q1."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr | str, right: Expr | Any):
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = Col(left) if isinstance(left, str) else left
        self.right = right if isinstance(right, Expr) else Const(right)

    def compile(self, schema: "Schema") -> Callable[[tuple], Any]:
        f = _ARITH_OPS[self.op]
        lhs = self.left.compile(schema)
        rhs = self.right.compile(schema)
        return lambda row: f(lhs(row), rhs(row))

    @property
    def signature(self) -> tuple:
        return ("arith", self.op, self.left.signature, self.right.signature)

    @property
    def terms(self) -> int:
        return 1

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()
