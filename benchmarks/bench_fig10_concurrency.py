"""Paper Figure 10: impact of concurrency, SSB Q3.2 with random predicates,
memory- and disk-resident SF=1 databases.

Shape claims checked:
* ordering at the highest concurrency: CJOIN < QPipe-SP < QPipe-CS < QPipe;
* at 1 query the shared operators *lose* (CJOIN slowest);
* QPipe saturates all cores at high concurrency while CJOIN uses only a
  few;
* on disk, circular scans cut response times massively vs independent
  scans (paper: 80-97%).
"""

from repro.bench.experiments import fig10_concurrency


def bench_fig10_concurrency(once, save_report, full_mode):
    result = once(fig10_concurrency, full=full_mode)
    save_report("fig10_concurrency", result.render())

    for res in ("memory", "disk"):
        rt = result.data[res]["rt"]
        # High-concurrency ordering (the paper's headline).
        assert rt["CJOIN"][-1] < rt["QPipe-SP"][-1] < rt["QPipe-CS"][-1] < rt["QPipe"][-1]
        # Low-concurrency: shared operators pay bookkeeping.
        assert rt["CJOIN"][0] > rt["QPipe-SP"][0]

    mem = result.data["memory"]["cells"]
    assert mem["QPipe"][-1].avg_cores_used > 20
    assert mem["CJOIN"][-1].avg_cores_used < 8
    # Disk: circular scans vs independent scans at high concurrency.
    disk = result.data["disk"]["rt"]
    reduction = 1 - disk["QPipe-CS"][-1] / disk["QPipe"][-1]
    assert reduction > 0.5
