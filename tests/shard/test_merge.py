"""The worker-boundary aggregation path against the in-engine answer.

The shard tier runs join-only plans in the workers and aggregates at the
shard boundary with exact arithmetic (:mod:`repro.query.merge`).  These
tests pin the contract to the engines:

* the partial-aggregate answer matches the engine's own aggregate/sort
  answer on the same data -- group keys and counts exactly, float sums to
  within accumulation rounding (the merged value is the correctly rounded
  exact sum; the engine rounds per row);
* both shard engine configurations (query-centric chain and CJOIN) yield
  EXACTLY the same partial state -- they join the same rows;
* per-shard states merge to exactly the whole-table state;
* an empty fact partition is served (empty state, zero service time)
  rather than crashing CJOIN.
"""

from __future__ import annotations

import pytest

from repro.data.ssb import generate_ssb
from repro.engine.config import QPIPE_SP
from repro.engine.qpipe import QPipeEngine
from repro.parallel.cells import DatasetSpec
from repro.query.merge import PartialAggregator, finalize_rows, merge_states
from repro.query.ssb_queries import q32
from repro.shard.partition import shard_tables
from repro.shard.spec import ShardConfig
from repro.shard.worker import execute_shard_query
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.engine import Simulator
from repro.sim.machine import PAPER_MACHINE
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.table import Table

SF = 0.2
SPEC = q32("CHINA", "FRANCE", 1993, 1996)


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(SF, seed=42).tables


def _engine_answer(tables):
    sim = Simulator(PAPER_MACHINE)
    storage = StorageManager(sim, DEFAULT_COST_MODEL, tables, StorageConfig())
    engine = QPipeEngine(sim, storage, QPIPE_SP)
    handle = engine.submit(SPEC)
    sim.run()
    return handle.results


def _config(engine: str, n_shards: int = 1) -> ShardConfig:
    return ShardConfig(
        n_shards=n_shards, engine=engine, dataset=DatasetSpec("ssb", SF, 42)
    )


def test_partial_aggregate_matches_engine_answer(tables):
    engine_rows = _engine_answer(tables)
    state, svc = execute_shard_query(tables, SPEC, _config("qpipe-sp"))
    merged_rows = finalize_rows(SPEC.group_by, SPEC.aggregates, SPEC.order_by, state)
    assert svc > 0.0
    assert len(merged_rows) == len(engine_rows)
    k = len(SPEC.group_by)
    # Values: compare per group key (both answers cover the same groups).
    by_key_engine = {r[:k]: r[k:] for r in engine_rows}
    by_key_merged = {r[:k]: r[k:] for r in merged_rows}
    assert by_key_engine.keys() == by_key_merged.keys()
    for key, engine_aggs in by_key_engine.items():
        merged_aggs = by_key_merged[key]
        for e, m in zip(engine_aggs, merged_aggs):
            assert m == pytest.approx(e, rel=1e-9)
    # Ordering: the canonical order obeys the query's ORDER BY.
    sort_view = [(r[k - 1], -r[k]) for r in merged_rows]  # (d_year asc, revenue desc)
    assert sort_view == sorted(sort_view)


def test_both_shard_engines_produce_identical_states(tables):
    view = shard_tables(tables, "lineorder", 0, 2, "hash", 42)
    state_qc, _ = execute_shard_query(view, SPEC, _config("qpipe-sp", 2))
    state_gqp, _ = execute_shard_query(view, SPEC, _config("cjoin-sp", 2))
    assert state_qc == state_gqp  # exact: same joined rows, same algebra


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_shard_states_merge_to_whole_table_state(tables, mode):
    whole, _ = execute_shard_query(tables, SPEC, _config("qpipe-sp"))
    n = 3
    states = []
    for shard in range(n):
        view = shard_tables(tables, "lineorder", shard, n, mode, 42)
        state, _ = execute_shard_query(view, SPEC, _config("qpipe-sp", n))
        states.append(state)
    assert merge_states(SPEC.aggregates, states) == whole  # exact


@pytest.mark.parametrize("engine", ["cjoin-sp", "qpipe-sp"])
def test_empty_fact_partition_is_served_not_crashed(tables, engine):
    view = dict(tables)
    fact = tables["lineorder"]
    view["lineorder"] = Table(
        fact.name, fact.schema, [], row_weight=fact.row_weight
    )
    state, svc = execute_shard_query(view, SPEC, _config(engine))
    assert state == {}
    assert svc == 0.0


def test_weighted_batches_scale_additive_aggregates():
    # Each generated row stands for `weight` real rows: counts and sums
    # must scale, min/max must not (mirrors the engine's AggregateStage).
    from repro.query.expr import Col
    from repro.query.plan import AggSpec
    from repro.storage.schema import Column, Schema

    schema = Schema([Column("g", "int"), Column("v", "float")], row_bytes=16.0)
    aggs = (
        AggSpec("sum", Col("v"), "s"),
        AggSpec("count", None, "n"),
        AggSpec("avg", Col("v"), "a"),
        AggSpec("min", Col("v"), "lo"),
        AggSpec("max", Col("v"), "hi"),
    )
    agg = PartialAggregator(("g",), aggs, schema)
    agg.consume([(1, 2.0), (1, 4.0)], weight=1000.0)
    rows = finalize_rows(("g",), aggs, (), agg.state())
    assert rows == [(1, 6000.0, 2000.0, 3.0, 2.0, 4.0)]
