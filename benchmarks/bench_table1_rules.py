"""Paper Table 1: rules of thumb, *derived* from an actual sweep.

| when             | execution engine            | I/O layer    |
|------------------|-----------------------------|--------------|
| low concurrency  | query-centric operators + SP| shared scans |
| high concurrency | GQP (shared operators) + SP | shared scans |

Shape claims checked: the measured winner at low concurrency is a
query-centric configuration with SP (QPipe-SP or QPipe-CS), and at high
concurrency a GQP configuration (CJOIN-SP or CJOIN).
"""

from repro.bench.experiments import table1_rules_of_thumb


def bench_table1_rules_of_thumb(once, save_report):
    result = once(table1_rules_of_thumb)
    save_report("table1_rules", result.render())

    winners = result.data["winners"]
    assert winners["low"] in ("QPipe-SP", "QPipe-CS", "QPipe")
    assert winners["low"] != "QPipe"  # sharing scans/results helps even here
    assert winners["high"] in ("CJOIN-SP", "CJOIN")
