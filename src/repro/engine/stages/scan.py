"""The table-scan stage.

With SP enabled this stage implements **circular scans** (shared scans with
a linear WoP): one scan driver per table serves every concurrent consumer.
A consumer joining mid-scan records its point of entry and is addressed
exactly ``num_pages`` pages -- the driver keeps wrapping until every
consumer has seen the full circle, then retires (the per-table position is
kept, so a later driver resumes where the last one stopped; this plays the
role of the paper's host-packet hand-off in Section 4.2).

Without SP, every scan packet gets a private driver reading the table
through the buffer pool independently -- N concurrent queries produce N
interleaved disk streams, which is exactly the I/O thrash circular scans
exist to avoid.

Disk-resident scans read ahead through a bounded prefetch channel (the OS
read-ahead the paper credits with masking CJOIN's preprocessor overhead);
direct I/O disables it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.commands import CPU
from repro.engine.packet import Packet
from repro.engine.stage import Stage
from repro.storage.prefetch import PageSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.qpipe import QPipeEngine
    from repro.query.plan import ScanNode
    from repro.query.star import Query
    from repro.storage.table import Table


class _ScanState:
    """Shared circular-scan state for one table."""

    __slots__ = ("packet", "exchange")

    def __init__(self, packet: Packet, exchange: Any):
        self.packet = packet
        self.exchange = exchange


class TableScanStage(Stage):
    """Scan stage with optional circular-scan sharing."""

    def __init__(self, engine: "QPipeEngine"):
        super().__init__(engine, "tablescan")
        self._states: dict[str, _ScanState] = {}
        self._positions: dict[str, int] = {}

    # ------------------------------------------------------------------
    def submit_scan(self, node: "ScanNode", query: "Query") -> Packet:
        """Admit a scan packet; returns the packet whose exchange consumers
        should read (with budget = the table's page count)."""
        self.packets_admitted += 1
        packet = self.make_packet(node, query)
        table = node.table
        if self.sp_enabled:
            state = self._states.get(table.name)
            live = state is not None and not state.exchange.closed
            if live and self._predicts_sharing(node, state):
                state.packet.attach_satellite(packet)
                self.packets_shared += 1
                self._record_sharing(packet)
                return packet
            packet.exchange = self.engine.new_exchange(f"scan.{table.name}.p{packet.packet_id}")
            if live:
                # Prediction model declined to share: evaluate privately in
                # parallel; the established host stays the sharing target.
                self._spawn_driver(packet, table, 0, shared=False)
            else:
                self._states[table.name] = _ScanState(packet, packet.exchange)
                start = self._positions.get(table.name, 0)
                self._spawn_driver(packet, table, start, shared=True)
        else:
            packet.exchange = self.engine.new_exchange(f"scan.{table.name}.p{packet.packet_id}")
            self._spawn_driver(packet, table, 0, shared=False)
        return packet

    def _predicts_sharing(self, node: "ScanNode", state: "_ScanState") -> bool:
        """With the push-based prediction model enabled, consult it before
        attaching; pull-based sharing always attaches (no serialization
        point, Section 4)."""
        config = self.engine.config
        if config.comm != "fifo" or not config.sp_prediction:
            return True
        from repro.engine.prediction import push_sharing_beneficial

        return push_sharing_beneficial(self.engine, node, len(state.packet.satellites))

    def _spawn_driver(self, packet: Packet, table: "Table", start: int, shared: bool) -> None:
        self.engine.sim.spawn(
            self._drive(packet, table, start, shared),
            name=f"scan-{table.name}-p{packet.packet_id}",
            query_id=None if shared else packet.query.query_id,
        )

    # ------------------------------------------------------------------
    def _drive(self, packet: Packet, table: "Table", start: int, shared: bool) -> Iterator[Any]:
        engine = self.engine
        cost = engine.cost
        exchange = packet.exchange
        yield CPU(cost.packet_dispatch, "misc")
        if table.num_pages == 0:
            exchange.close()
            packet.finished = True
            return
        source = PageSource(
            engine.sim, engine.storage, table, start, name=f"scan-{table.name}-p{packet.packet_id}"
        )
        fuse = engine.config.use_fuse_charges()
        # Columnar mode: emit zero-copy column views of the page; consumers
        # run late-materialized.  The scan charge counts rows either way.
        columnar = engine.config.use_columnar_pages()
        try:
            while exchange.active_consumers > 0:
                page = yield from source.next()
                scan_cmd = cost.scan(len(page), page.weight)
                if fuse and scan_cmd.cycles > 0:
                    # Fast mode: the per-page scan charge rides in front of
                    # the exchange's emit charge (nothing observable happens
                    # between the two yields).
                    yield from exchange.emit(page.to_batch(columnar), lead=scan_cmd)
                else:
                    yield scan_cmd
                    yield from exchange.emit(page.to_batch(columnar))
                if shared:
                    self._positions[table.name] = source.position
        finally:
            exchange.close()
            packet.finished = True
            source.close()
            state = self._states.get(table.name)
            if shared and state is not None and state.packet is packet:
                del self._states[table.name]
