"""Experiment runner: one simulation per (engine config, workload) cell.

``run_batch`` reproduces the paper's methodology for the sensitivity
analysis: all queries are submitted at the same time in a single batch
("this single batch ... allows us to show the effects of SP, as all queries
with common sub-plans arrive surely inside the WoP of their pivot
operators").  ``run_closed_loop`` reproduces the Figure 16 throughput
experiment: each client submits its next query when the previous finishes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.volcano import VolcanoEngine
from repro.bench.workload import QueryJob
from repro.engine.config import EngineConfig
from repro.engine.qpipe import QPipeEngine
from repro.query.star import StarQuerySpec
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.engine import Simulator
from repro.sim.machine import PAPER_MACHINE, MachineSpec
from repro.sim.metrics import percentile
from repro.storage.manager import StorageConfig, StorageManager

__all__ = [
    "POSTGRES",
    "HYBRID",
    "RunResult",
    "ThroughputResult",
    "run_batch",
    "run_closed_loop",
    "geometric_levels",
    "percentile",
]

#: Engine selectors: an EngineConfig, or one of these sentinels.
POSTGRES = "postgres"  # the query-centric Volcano baseline
HYBRID = "hybrid"  # dynamic QPipe-SP / CJOIN-SP routing (paper's conclusion)


@dataclass
class RunResult:
    """Measurements of one batch run (mirrors the paper's tables)."""

    config_name: str
    n_queries: int
    response_times: list[float]
    sim_seconds: float
    avg_cores_used: float
    avg_read_mb_s: float
    cpu_breakdown: dict[str, float]  # seconds of one core, by category
    sharing: dict[str, int]
    admission_seconds: float
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def mean_response(self) -> float:
        return statistics.fmean(self.response_times)

    @property
    def stdev_response(self) -> float:
        if len(self.response_times) < 2:
            return 0.0
        return statistics.stdev(self.response_times)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(self.cpu_breakdown.values())


@dataclass
class ThroughputResult:
    """Measurements of one closed-loop run."""

    config_name: str
    n_clients: int
    completed: int
    duration: float
    avg_cores_used: float
    avg_read_mb_s: float

    @property
    def queries_per_hour(self) -> float:
        return self.completed / self.duration * 3600.0


def _make_engine(sim: Simulator, storage: StorageManager, config, cost: CostModel):
    if config == POSTGRES:
        return VolcanoEngine(sim, storage, cost)
    if config == HYBRID:
        from repro.engine.hybrid import HybridEngine

        return HybridEngine(sim, storage, cost)
    if isinstance(config, EngineConfig):
        return QPipeEngine(sim, storage, config, cost)
    raise TypeError(f"unknown engine selector {config!r}")


def _config_name(config) -> str:
    if config == POSTGRES:
        return "Postgres"
    if config == HYBRID:
        return "Hybrid"
    return config.name


#: Per-query dispatch latency when submitting a batch: parsing, optimizing
#: and dispatching 256 queries is not instantaneous on a real system, and
#: this is what closes the step WoP of early-emitting operators for late
#: arrivals (the paper's hash-join sharing counts are well below the
#: maximum possible even though queries are "submitted at the same time").
DEFAULT_SUBMIT_STAGGER = 0.004


def run_batch(
    tables: dict,
    config,
    workload: list[QueryJob],
    storage_config: StorageConfig = StorageConfig(),
    machine: MachineSpec = PAPER_MACHINE,
    cost: CostModel = DEFAULT_COST_MODEL,
    submit_stagger: float = DEFAULT_SUBMIT_STAGGER,
) -> RunResult:
    """Submit every job in one batch (with a small per-query dispatch
    stagger), run to completion, collect the paper's measurements.  A fresh
    simulator/storage/engine per call; the immutable ``tables`` are shared."""
    if not workload:
        raise ValueError("empty workload")
    sim = Simulator(machine)
    storage = StorageManager(sim, cost, tables, storage_config)
    engine = _make_engine(sim, storage, config, cost)
    handles = []

    def submitter():
        from repro.sim.commands import SLEEP

        for i, job in enumerate(workload):
            if job.spec is not None:
                handles.append(engine.submit(job.spec, label=job.label or None))
            else:
                handles.append(engine.submit_plan(job.plan, label=job.label))
            if submit_stagger > 0 and i + 1 < len(workload):
                yield SLEEP(submit_stagger)
        if False:  # pragma: no cover - ensure generator even for 1-job loads
            yield

    sim.spawn(submitter(), "submitter")
    sim.run()
    window = sim.now if sim.now > 0 else 1.0
    return RunResult(
        config_name=_config_name(config),
        n_queries=len(workload),
        response_times=[h.response_time for h in handles],
        sim_seconds=sim.now,
        avg_cores_used=sim.avg_cores_used(window),
        avg_read_mb_s=sim.disk.bytes_delivered / window / (1 << 20),
        cpu_breakdown=sim.metrics.cpu_seconds_by_category(machine.hz),
        sharing=dict(sim.metrics.sharing_events),
        admission_seconds=sim.metrics.durations.get("cjoin_admission", 0.0),
        counts=dict(sim.metrics.counts),
    )


def run_closed_loop(
    tables: dict,
    config,
    spec_factory: Callable[[int, int], StarQuerySpec],
    n_clients: int,
    duration: float,
    storage_config: StorageConfig = StorageConfig(),
    machine: MachineSpec = PAPER_MACHINE,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> ThroughputResult:
    """Closed-loop clients: each submits ``spec_factory(client, k)`` and
    waits for completion before submitting the next, for ``duration``
    simulated seconds (the paper ran one hour)."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    sim = Simulator(machine)
    storage = StorageManager(sim, cost, tables, storage_config)
    engine = _make_engine(sim, storage, config, cost)
    completed = [0]

    def client(cid: int):
        k = 0
        while sim.now < duration:
            handle = engine.submit(spec_factory(cid, k))
            yield from handle.wait()
            completed[0] += 1
            k += 1

    for cid in range(n_clients):
        sim.spawn(client(cid), f"client-{cid}")
    sim.run()
    window = max(sim.now, duration)
    return ThroughputResult(
        config_name=_config_name(config),
        n_clients=n_clients,
        completed=completed[0],
        duration=window,
        avg_cores_used=sim.avg_cores_used(window),
        avg_read_mb_s=sim.disk.bytes_delivered / window / (1 << 20),
    )


def geometric_levels(lo: int, hi: int) -> list[int]:
    """1, 2, 4, ... doubling levels in [lo, hi] (both included)."""
    out = []
    v = lo
    while v < hi:
        out.append(v)
        v *= 2
    out.append(hi)
    return out
